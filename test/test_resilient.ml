(* The resilient serving layer (docs/MODEL.md §11): budgeted scans that
   degrade explicitly instead of retrying forever, circuit breakers that
   isolate wounded shards and re-close after probing, and self-healing
   shard rebuilds that survive a stuck epoch cell — all while every scan
   reported Atomic stays linearizable. *)

open Psnap
module M = Mem.Sim
module RS = Sim_resilient_fig3

let () = M.set_strict true

let () = M.set_fault_tracking true

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let rr () = Scheduler.round_robin ()

let reset () =
  Sim.reset_prerun_oids ();
  M.reset_fault_counts ();
  Mem.Hardened.reset_stats ();
  Metrics.reset_serving ()

(* ---- sequential semantics ---- *)

let test_roundtrip () =
  reset ();
  let m = 10 in
  let t = RS.create ~n:2 (Array.init m (fun i -> 100 + i)) in
  let body () =
    let h = RS.handle t ~pid:0 in
    (match RS.scan_outcome h (Array.init m Fun.id) with
    | RS.Atomic vs ->
      Array.iteri (fun i v -> check_int "initial" (100 + i) v) vs
    | RS.Degraded _ -> Alcotest.fail "solo scan degraded");
    for i = 0 to m - 1 do
      RS.update h i (200 + i)
    done;
    match RS.scan_outcome h [| 1; 4; 7 |] with
    | RS.Atomic vs ->
      check_bool "updated values" true (vs = [| 201; 204; 207 |]);
      check_int "single round suffices when quiet" 2 (RS.last_scan_rounds h)
    | RS.Degraded _ -> Alcotest.fail "solo scan degraded"
  in
  ignore (Sim.run ~sched:(rr ()) [| body |]);
  check_int "no degraded scans" 0 (Metrics.serving ()).Metrics.degraded_scans

(* ---- deadline: budget exhaustion degrades explicitly ---- *)

(* A tight budget and a continuously interfering updater: under the
   round-robin scheduler every validation round observes fresh epochs, so
   the scan must exhaust its 2-round budget and report the failing
   components instead of retrying forever. *)
module RS_tight =
  Psnap.Runtime.Resilient.Make (Mem.Sim) (Sim_fig3) (Sim_fig3)
    (struct
      let shards = 2
      let partition = `Round_robin
      let max_rounds = 2
      let backoff_base = 0 (* keep the interference window tight *)
      let backoff_max = 0
      let breaker_threshold = 1000 (* breakers out of the picture here *)
      let breaker_cooldown = 4
      let probe_successes = 1
      let heal_quiesce = 16
    end)

let test_budget_exhaustion_degrades () =
  reset ();
  let t = RS_tight.create ~n:2 [| 0; 0 |] in
  let outcome = ref None in
  let updater () =
    let h = RS_tight.handle t ~pid:0 in
    for k = 1 to 400 do
      RS_tight.update h (k mod 2) k
    done
  in
  let scanner () =
    let h = RS_tight.handle t ~pid:1 in
    let out = RS_tight.scan_outcome h [| 0; 1 |] in
    outcome := Some (out, RS_tight.last_scan_rounds h)
  in
  ignore (Sim.run ~sched:(rr ()) [| updater; scanner |]);
  match !outcome with
  | Some (RS_tight.Degraded { suspects; failed; rounds; _ }, last_rounds) ->
    check_int "stopped exactly at the budget" 2 rounds;
    check_int "last_scan_rounds agrees" 2 last_rounds;
    check_bool "suspect shards reported" true (suspects <> []);
    check_bool "failing (component, epoch) pairs reported" true (failed <> []);
    check_bool "epochs in the report are real" true
      (List.for_all (fun (i, e) -> i >= 0 && i < 2 && e > 0) failed);
    check_int "metrics counted it" 1
      (Metrics.serving ()).Metrics.degraded_scans
  | Some (RS_tight.Atomic _, _) ->
    Alcotest.fail "scan validated despite a continuous updater and budget 2"
  | None -> Alcotest.fail "scanner never ran"

(* ---- circuit breaker: open -> half-open -> re-close ---- *)

(* Threshold 1 so the first budget-exhausted scan opens the wounded
   shard's circuit; the updater then goes quiet, so after the cooldown the
   probe validates and the breaker re-closes — the full lifecycle in one
   deterministic run. *)
module RS_breaker =
  Psnap.Runtime.Resilient.Make (Mem.Sim) (Sim_fig3) (Sim_fig3)
    (struct
      let shards = 2
      let partition = `Round_robin
      let max_rounds = 2
      let backoff_base = 0
      let backoff_max = 0
      let breaker_threshold = 1
      let breaker_cooldown = 2
      let probe_successes = 1
      let heal_quiesce = 16
    end)

let test_breaker_lifecycle () =
  reset ();
  let t = RS_breaker.create ~n:2 [| 0; 0 |] in
  let states = ref [] in
  let atomic_again = ref false in
  let updater () =
    let h = RS_breaker.handle t ~pid:0 in
    for k = 1 to 60 do
      RS_breaker.update h (k mod 2) k
    done
  in
  let scanner () =
    let h = RS_breaker.handle t ~pid:1 in
    (* enough scans to open the breaker while the updater is live, tick
       through the cooldown, probe, and scan validated again after the
       updater finished *)
    for _ = 1 to 40 do
      let out = RS_breaker.scan_outcome h [| 0; 1 |] in
      states :=
        (RS_breaker.breaker_state t 0, RS_breaker.breaker_state t 1)
        :: !states;
      match out with
      | RS_breaker.Atomic _ -> atomic_again := true
      | RS_breaker.Degraded _ -> ()
    done
  in
  ignore (Sim.run ~sched:(rr ()) [| updater; scanner |]);
  let sv = Metrics.serving () in
  check_bool "a circuit opened" true (sv.Metrics.breaker_opens >= 1);
  check_bool "it half-opened after the cooldown" true
    (sv.Metrics.breaker_half_opens >= 1);
  check_bool "a probe re-closed it" true (sv.Metrics.breaker_closes >= 1);
  check_bool "observed an Open state" true
    (List.exists (fun (a, b) -> a = RS_breaker.Open || b = RS_breaker.Open)
       !states);
  check_bool "scans validate again after the storm" true !atomic_again;
  check_bool "ends closed" true
    (RS_breaker.breaker_state t 0 = RS_breaker.Closed
    && RS_breaker.breaker_state t 1 = RS_breaker.Closed)

let test_force_open_isolates_shard () =
  reset ();
  let t = RS.create ~n:1 (Array.init 8 (fun i -> i)) in
  RS.force_open t 0;
  let body () =
    let h = RS.handle t ~pid:0 in
    (* a scan avoiding the open shard (components 1,5 -> shards 1) is
       served Atomic; one touching shard 0 degrades with the suspect *)
    (match RS.scan_outcome h [| 1; 5 |] with
    | RS.Atomic _ -> ()
    | RS.Degraded _ -> Alcotest.fail "healthy-shard scan degraded");
    match RS.scan_outcome h [| 0; 1 |] with
    | RS.Atomic _ -> Alcotest.fail "open shard served as validated"
    | RS.Degraded { suspects; rounds; _ } ->
      check_bool "open shard suspected" true (List.mem 0 suspects);
      check_int "no validation rounds wasted on it" 1 rounds
  in
  ignore (Sim.run ~sched:(rr ()) [| body |]);
  check_bool "breaker still open" true (RS.breaker_state t 0 = RS.Open)

(* ---- self-healing ---- *)

(* Deterministic rebuild: no concurrency, heal directly, and the rebuilt
   shard must carry the exact pre-heal values and serve validated scans. *)
let test_heal_preserves_values () =
  reset ();
  let m = 8 in
  let t = RS.create ~n:1 (Array.init m (fun i -> -(i + 1))) in
  let body () =
    let h = RS.handle t ~pid:0 in
    for i = 0 to m - 1 do
      RS.update h i (10 * (i + 1))
    done;
    check_int "gen 1 before" 1 (RS.shard_gen t ~pid:0 0);
    RS.heal t ~pid:0 0;
    check_int "gen bumped by the rebuild" 2 (RS.shard_gen t ~pid:0 0);
    (* updates and scans keep working across the generation swap *)
    RS.update h 0 999;
    match RS.scan_outcome h (Array.init m Fun.id) with
    | RS.Atomic vs ->
      check_int "healed shard serves the new value" 999 vs.(0);
      for i = 1 to m - 1 do
        check_int "values survived the rebuild" (10 * (i + 1)) vs.(i)
      done
    | RS.Degraded _ -> Alcotest.fail "post-heal scan degraded"
  in
  ignore (Sim.run ~sched:(rr ()) [| body |]);
  let sv = Metrics.serving () in
  check_int "one heal started" 1 sv.Metrics.heals_started;
  check_int "one heal completed" 1 sv.Metrics.heals_completed;
  check_int "none aborted" 0 sv.Metrics.heals_aborted

(* A stuck epoch cell: updates keep completing (nonces keep tags unique),
   the duplicate draw is detected, the shard is rebuilt with a fresh epoch
   cell, and scans validate against the healed shard. *)
let test_stuck_epoch_triggers_heal () =
  reset ();
  let m = 8 in
  let t = RS.create ~n:2 (Array.init m (fun i -> -(i + 1))) in
  let post_heal_atomic = ref 0 in
  let updater () =
    let h = RS.handle t ~pid:0 in
    for k = 1 to 20 do
      RS.update h ((4 * k) mod m) k (* components 0,4 -> shard 0 *)
    done
  in
  let scanner () =
    let h = RS.handle t ~pid:1 in
    for _ = 1 to 6 do
      match RS.scan_outcome h [| 0; 4 |] with
      | RS.Atomic _ when RS.shard_gen t ~pid:1 0 > 1 -> incr post_heal_atomic
      | _ -> ()
    done
  in
  ignore
    (Sim.run
       ~sched:
         (Scheduler.mem_fault_on_cell ~kind:Event.Stuck_cell
            ~name_prefix:"rshard0.epoch" (rr ()))
       [| updater; scanner |]);
  let sv = Metrics.serving () in
  check_bool "duplicate epoch detected" true (sv.Metrics.stuck_epochs >= 1);
  check_bool "heal completed" true (sv.Metrics.heals_completed >= 1);
  check_bool "validated scans of the rebuilt shard" true
    (!post_heal_atomic >= 1)

(* ---- chaos campaign: Atomic is always linearizable, budgets hold ---- *)

let chaos_campaign ~seeds ~stick =
  let m = 16 and updaters = 3 and scanners = 2 in
  let n = updaters + scanners in
  let init = Array.init m (fun i -> -(i + 1)) in
  reset ();
  let atomic_total = ref 0 in
  let degraded_total = ref 0 in
  for seed = 0 to seeds - 1 do
    Sim.reset_prerun_oids ();
    Mem.Hardened.reset_stats ();
    let hist = History.create ~now:Sim.mark () in
    let atomic_entries = ref [] in
    let t = RS.create ~n (Array.copy init) in
    let updater ~incarnation pid () =
      let h = RS.handle t ~pid in
      for k = 1 to 12 do
        let i = (k + (pid * 5)) mod m in
        let v = (pid * 1_000_000) + (incarnation * 10_000) + k in
        ignore
          (History.record hist ~pid (Snapshot_spec.Update (i, v)) (fun () ->
               RS.update h i v;
               Snapshot_spec.Ack))
      done
    in
    let scanner pid () =
      let h = RS.handle t ~pid in
      let idxs = [| 0; 3; 6; 9; 12 |] in
      for _ = 1 to 5 do
        let inv = Sim.mark () in
        let out = RS.scan_outcome h idxs in
        let resp = Sim.mark () in
        if RS.last_scan_rounds h > 6 then
          Alcotest.failf "seed %d: scan overran its 6-round budget" seed;
        match out with
        | RS.Atomic vs ->
          incr atomic_total;
          atomic_entries :=
            {
              History.pid;
              op = Snapshot_spec.Scan idxs;
              res = Some (Snapshot_spec.Vals vs);
              inv;
              resp = Some resp;
            }
            :: !atomic_entries
        | RS.Degraded _ -> incr degraded_total
      done
    in
    let body ~incarnation pid =
      if pid < updaters then updater ~incarnation pid else scanner pid
    in
    let sched =
      let w = Scheduler.chaos ~seed ~inner:(Scheduler.random ~seed ()) () in
      if stick then
        Scheduler.mem_fault_on_cell ~kind:Event.Stuck_cell
          ~name_prefix:"rshard1.epoch" w
      else w
    in
    ignore
      (Sim.run
         ~recover:(fun ~pid ~incarnation -> body ~incarnation pid)
         ~sched
         (Array.init n (fun pid -> body ~incarnation:1 pid)));
    match
      Snapshot_spec.check_observations ~init
        (History.entries hist @ !atomic_entries)
    with
    | [] -> ()
    | v :: _ ->
      Alcotest.failf "seed %d: %a" seed Snapshot_spec.pp_violation v
  done;
  check_bool "campaign produced atomic scans" true (!atomic_total > 0);
  (!atomic_total, !degraded_total)

let test_chaos_linearizable () =
  ignore (chaos_campaign ~seeds:12 ~stick:false)

let test_chaos_with_stuck_epochs () =
  let _, _ = chaos_campaign ~seeds:12 ~stick:true in
  let sv = Metrics.serving () in
  check_bool "stuck epochs seen" true (sv.Metrics.stuck_epochs >= 1);
  check_bool "at least one rebuild completed across the campaign" true
    (sv.Metrics.heals_completed >= 1)

(* ---- the Snap face drives the multicore load generator ---- *)

module RS_mc =
  Psnap.Runtime.Resilient.Make (Mem.Atomic) (Mc_fig3) (Mc_fig3)
    (struct
      let shards = 4
      let partition = `Round_robin
      let max_rounds = 6
      let backoff_base = 2
      let backoff_max = 16
      let breaker_threshold = 3
      let breaker_cooldown = 4
      let probe_successes = 2
      let heal_quiesce = 64
    end)

let test_snap_loadgen_smoke () =
  Metrics.reset_serving ();
  let rep =
    Psnap.Runtime.Loadgen.run
      (module RS_mc.Snap)
      {
        Psnap.Runtime.Loadgen.default with
        m = 64;
        r = 4;
        domains = 2;
        warmup_s = 0.02;
        duration_s = 0.1;
      }
  in
  check_bool "did updates" true (rep.Psnap.Runtime.Loadgen.updates > 0);
  check_bool "did scans" true (rep.Psnap.Runtime.Loadgen.scans > 0)

let () =
  Alcotest.run "resilient"
    [
      ( "semantics",
        [ Alcotest.test_case "sequential roundtrip" `Quick test_roundtrip ] );
      ( "deadline",
        [
          Alcotest.test_case "budget exhaustion degrades explicitly" `Quick
            test_budget_exhaustion_degrades;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "open -> half-open -> re-close" `Quick
            test_breaker_lifecycle;
          Alcotest.test_case "force-open isolates the shard" `Quick
            test_force_open_isolates_shard;
        ] );
      ( "heal",
        [
          Alcotest.test_case "rebuild preserves values" `Quick
            test_heal_preserves_values;
          Alcotest.test_case "stuck epoch triggers a rebuild" `Quick
            test_stuck_epoch_triggers_heal;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "atomic scans linearizable (12 seeds)" `Quick
            test_chaos_linearizable;
          Alcotest.test_case "stuck epochs: heals complete, checks hold"
            `Quick test_chaos_with_stuck_epochs;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "Snap face smoke (2 domains)" `Quick
            test_snap_loadgen_smoke;
        ] );
    ]
