(* Tests of the unbounded register array (chunk directory over MEM). *)

open Psnap
module M = Mem.Sim
module Inf = Psnap.Mem.Infinite_array.Make (Psnap.Mem.Sim)
module Inf_atomic = Psnap.Mem.Infinite_array.Make (Psnap.Mem.Atomic)

let check_int = Alcotest.(check int)

let in_sim f =
  let out = ref None in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ()) [| (fun () -> out := Some (f ())) |]);
  Option.get !out

let test_read_default () =
  let v =
    in_sim (fun () ->
        let a = Inf.create (-1) in
        List.map (Inf.read a) [ 0; 1; 5; 100; 10_000 ])
  in
  Alcotest.(check (list int)) "defaults" [ -1; -1; -1; -1; -1 ] v

let test_write_read_roundtrip () =
  let v =
    in_sim (fun () ->
        let a = Inf.create 0 in
        List.iter (fun i -> Inf.write a i (i * 7)) [ 0; 1; 2; 3; 63; 64; 1000 ];
        List.map (Inf.read a) [ 0; 1; 2; 3; 63; 64; 1000; 4 ])
  in
  Alcotest.(check (list int))
    "values" [ 0; 7; 14; 21; 441; 448; 7000; 0 ] v

let test_neighbors_independent () =
  let v =
    in_sim (fun () ->
        let a = Inf.create 0 in
        Inf.write a 41 1;
        (Inf.read a 40, Inf.read a 41, Inf.read a 42))
  in
  let a, b, c = v in
  check_int "left" 0 a;
  check_int "hit" 1 b;
  check_int "right" 0 c

let test_negative_rejected () =
  ignore
    (in_sim (fun () ->
         let a = Inf.create 0 in
         (try ignore (Inf.read a (-1)) with Invalid_argument _ -> ());
         0))

let test_access_cost_constant () =
  (* One access = directory read + (chunk install CAS)? + slot access:
     at most 3 steps, regardless of index. *)
  let cost i =
    let steps = ref 0 in
    let procs =
      [|
        (fun () ->
          let a = Inf.create 0 in
          let s0 = Sim.steps_of 0 in
          Inf.write a i 1;
          steps := Sim.steps_of 0 - s0);
      |]
    in
    ignore (Sim.run ~sched:(Scheduler.round_robin ()) procs);
    !steps
  in
  List.iter
    (fun i ->
      let c = cost i in
      Alcotest.(check bool)
        (Printf.sprintf "cost at %d is <= 3 (got %d)" i c)
        true (c <= 3))
    [ 0; 1; 10; 1_000; 100_000 ]

let test_concurrent_install_race () =
  (* Two processes write to the same fresh chunk concurrently under every
     schedule of their (few) steps: both writes must land. *)
  let n_schedules = ref 0 in
  let make () =
    let a = ref None in
    let procs =
      [|
        (fun () ->
          let arr = Inf.create 0 in
          a := Some arr;
          Inf.write arr 3 10);
        (fun () ->
          (* wait-free: p1 spins locally until p0 allocates; allocation is
             step-free so under replay p0's creation happened already *)
          match !a with
          | Some arr -> Inf.write arr 4 20
          | None -> ());
      |]
    in
    let check () =
      match !a with
      | None -> ()
      | Some arr ->
        incr n_schedules;
        let got = in_sim (fun () -> (Inf.read arr 3, Inf.read arr 4)) in
        if got <> (10, 20) && got <> (10, 0) then
          Alcotest.failf "lost write: (%d,%d)" (fst got) (snd got)
    in
    (procs, check)
  in
  (* p1 only writes if p0's allocation ran first; the explorer covers all
     interleavings of the shared steps. *)
  ignore (Explore.run ~make ());
  Alcotest.(check bool) "explored some schedules" true (!n_schedules > 0)

let test_atomic_backend_concurrent () =
  (* Same chunk raced by 4 domains on real atomics: all writes land. *)
  let arr = Inf_atomic.create 0 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for k = 0 to 99 do
              Inf_atomic.write arr ((d * 100) + k) (((d * 100) + k) * 3)
            done))
  in
  List.iter Domain.join domains;
  let ok = ref true in
  for i = 0 to 399 do
    if Inf_atomic.read arr i <> i * 3 then ok := false
  done;
  Alcotest.(check bool) "all 400 writes visible" true !ok

let () =
  Alcotest.run "infinite_array"
    [
      ( "sim",
        [
          Alcotest.test_case "defaults" `Quick test_read_default;
          Alcotest.test_case "roundtrip" `Quick test_write_read_roundtrip;
          Alcotest.test_case "neighbors" `Quick test_neighbors_independent;
          Alcotest.test_case "negative index" `Quick test_negative_rejected;
          Alcotest.test_case "O(1) access cost" `Quick test_access_cost_constant;
          Alcotest.test_case "install race" `Quick test_concurrent_install_race;
        ] );
      ( "atomic",
        [ Alcotest.test_case "4 domains" `Quick test_atomic_backend_concurrent ] );
    ]
