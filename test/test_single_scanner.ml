(* Tests of the single-writer/single-scanner snapshot (related work [22]):
   sequential semantics, O(1)/O(r) step costs, linearizability within its
   restrictions under random and exhaustive schedules — and the exhaustive
   counterexample showing the restriction is necessary: used with two
   writers on one component, the explorer finds a real non-linearizable
   execution.  That failure is the structural reason the paper's general
   multi-writer algorithm needs CAS and helping. *)

open Psnap
module S = Sim_single_scanner

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let in_sim f =
  let out = ref None in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [| (fun () -> out := Some (f ())) |]);
  Option.get !out

let test_sequential () =
  in_sim (fun () ->
      (* one process owns everything and scans *)
      let t = S.create ~owner:[| 0; 0; 0 |] ~scanner:0 [| 1; 2; 3 |] in
      let h = S.handle t ~pid:0 in
      Alcotest.(check (array int)) "initial" [| 1; 3 |] (S.scan h [| 0; 2 |]);
      S.update h 1 20;
      S.update h 2 30;
      Alcotest.(check (array int))
        "after updates" [| 1; 20; 30 |]
        (S.scan h [| 0; 1; 2 |]);
      (* repeated scans stay stable *)
      Alcotest.(check (array int)) "stable" [| 20 |] (S.scan h [| 1 |]))

let test_restrictions_enforced () =
  in_sim (fun () ->
      let t = S.create ~owner:[| 0; 1 |] ~scanner:2 [| 0; 0 |] in
      let h0 = S.handle t ~pid:0 in
      S.update h0 0 5;
      check_bool "foreign update rejected" true
        (match S.update h0 1 9 with
        | () -> false
        | exception Invalid_argument _ -> true);
      check_bool "foreign scan rejected" true
        (match S.scan h0 [| 0 |] with
        | _ -> false
        | exception Invalid_argument _ -> true))

let test_step_costs () =
  let upd_steps = ref 0 and scan_steps = ref 0 in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           let t =
             S.create ~owner:(Array.make 64 0) ~scanner:0
               (Array.init 64 (fun i -> i))
           in
           let h = S.handle t ~pid:0 in
           let s0 = Sim.steps_of 0 in
           S.update h 17 1;
           upd_steps := Sim.steps_of 0 - s0;
           let s1 = Sim.steps_of 0 in
           ignore (S.scan h [| 1; 9; 25; 49 |]);
           scan_steps := Sim.steps_of 0 - s1);
       |]);
  check_int "update = 3 steps (read cell, read seq, write)" 3 !upd_steps;
  check_int "scan of r=4 = r+1 steps" 5 !scan_steps

(* linearizable within restrictions: random schedules, observation check *)
let test_random_schedules_linearizable () =
  let m = 6 in
  let owner = Array.init m (fun i -> i mod 2) in
  let init = Array.init m (fun i -> -(i + 1)) in
  for seed = 0 to 29 do
    let hist = History.create ~now:Sim.mark () in
    let t = S.create ~owner ~scanner:2 (Array.copy init) in
    let writer pid () =
      let h = S.handle t ~pid in
      for k = 1 to 25 do
        let i = (((2 * k) + pid) mod m / 2 * 2) + pid in
        (* components with owner = pid *)
        let i = if owner.(i) = pid then i else (i + 1) mod m in
        let v = (pid * 10_000) + k in
        ignore
          (History.record hist ~pid (Snapshot_spec.Update (i, v)) (fun () ->
               S.update h i v;
               Snapshot_spec.Ack))
      done
    in
    let scanner () =
      let h = S.handle t ~pid:2 in
      for _ = 1 to 12 do
        let idxs = [| 0; 1; 4 |] in
        ignore
          (History.record hist ~pid:2 (Snapshot_spec.Scan idxs) (fun () ->
               Snapshot_spec.Vals (S.scan h idxs)))
      done
    in
    ignore
      (Sim.run ~sched:(Scheduler.random ~seed ()) [| writer 0; writer 1; scanner |]);
    match Snapshot_spec.check_observations ~init (History.entries hist) with
    | [] -> ()
    | v :: _ ->
      Alcotest.failf "seed %d: %a" seed Snapshot_spec.pp_violation v
  done

(* all interleavings of one owner + the scanner: exact linearizability *)
let test_exhaustive_single_writer () =
  let init = [| -1; -2 |] in
  let schedules = ref 0 in
  let make () =
    let hist = History.create ~now:Sim.mark () in
    let t = S.create ~owner:[| 0; 0 |] ~scanner:1 (Array.copy init) in
    let procs =
      [|
        (fun () ->
          let h = S.handle t ~pid:0 in
          ignore
            (History.record hist ~pid:0 (Snapshot_spec.Update (0, 7)) (fun () ->
                 S.update h 0 7;
                 Snapshot_spec.Ack));
          ignore
            (History.record hist ~pid:0 (Snapshot_spec.Update (1, 8)) (fun () ->
                 S.update h 1 8;
                 Snapshot_spec.Ack)));
        (fun () ->
          let h = S.handle t ~pid:1 in
          for _ = 1 to 2 do
            ignore
              (History.record hist ~pid:1 (Snapshot_spec.Scan [| 0; 1 |])
                 (fun () -> Snapshot_spec.Vals (S.scan h [| 0; 1 |])))
          done);
      |]
    in
    ( procs,
      fun () ->
        incr schedules;
        if not (Snapshot_spec.check ~init (History.entries hist)) then
          Alcotest.fail "non-linearizable interleaving (single-writer use)" )
  in
  ignore (Explore.run ~make ());
  check_bool
    (Printf.sprintf "schedules: %d" !schedules)
    true (!schedules > 100)

(* the counterexample: two writers on ONE component via the unchecked
   update; the explorer must find a non-linearizable execution *)
let test_exhaustive_multi_writer_breaks () =
  let init = [| -1 |] in
  let violations = ref 0 and schedules = ref 0 in
  let make () =
    let hist = History.create ~now:Sim.mark () in
    let t = S.create ~owner:[| 0 |] ~scanner:2 (Array.copy init) in
    let upd pid v () =
      let h = S.handle t ~pid in
      ignore
        (History.record hist ~pid (Snapshot_spec.Update (0, v)) (fun () ->
             S.update_unchecked h 0 v;
             Snapshot_spec.Ack))
    in
    let fence = Psnap.Mem.Sim.make 0 in
    let procs =
      [|
        upd 0 20;
        upd 1 10;
        (fun () ->
          let h = S.handle t ~pid:2 in
          (* one shared step before invoking the scan, so schedules exist in
             which a whole update really precedes the scan's invocation
             (fibers otherwise run their local prefix, including the
             invocation stamp, before any scheduling) *)
          ignore (Psnap.Mem.Sim.read fence);
          ignore
            (History.record hist ~pid:2 (Snapshot_spec.Scan [| 0 |]) (fun () ->
                 Snapshot_spec.Vals (S.scan h [| 0 |]))));
      |]
    in
    ( procs,
      fun () ->
        incr schedules;
        if not (Snapshot_spec.check ~init (History.entries hist)) then
          incr violations )
  in
  ignore (Explore.run ~make ());
  check_bool
    (Printf.sprintf "explored %d schedules, %d violations" !schedules !violations)
    true
    (!violations > 0)

let () =
  Alcotest.run "single_scanner"
    [
      ( "unit",
        [
          Alcotest.test_case "sequential" `Quick test_sequential;
          Alcotest.test_case "restrictions" `Quick test_restrictions_enforced;
          Alcotest.test_case "step costs" `Quick test_step_costs;
        ] );
      ( "linearizable-within-restrictions",
        [
          Alcotest.test_case "random schedules" `Quick
            test_random_schedules_linearizable;
          Alcotest.test_case "exhaustive" `Quick test_exhaustive_single_writer;
        ] );
      ( "restriction-necessity",
        [
          Alcotest.test_case "multi-writer counterexample found" `Quick
            test_exhaustive_multi_writer_breaks;
        ] );
    ]
