(* Tests of the multicore (Atomic) backend with real OCaml domains.  Wall
   clock replaces the step counter for history timestamps; the observation
   checker validates linearizability of the recorded histories.  (On a
   single-core host domains still interleave preemptively, which is enough
   to exercise the concurrent paths.) *)

open Psnap

module type SNAP = Snapshot.S

let impls : (string * (module SNAP)) list =
  [
    ("afek-full", (module Mc_afek));
    ("fig1-reg", (module Mc_fig1));
    ("fig3-cas", (module Mc_fig3));
    ("fig1-adaptive", (module Mc_fig1_adaptive));
    ("fig1-small", (module Mc_fig1_small));
    ("fig3-small", (module Mc_fig3_small));
    ("farray", (module Mc_farray));
  ]

(* monotonic timestamps across domains *)
let make_now () =
  let c = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add c 1

let test_sequential (module S : SNAP) () =
  let t = S.create ~n:1 [| 1; 2; 3; 4 |] in
  let h = S.handle t ~pid:0 in
  Alcotest.(check (array int)) "initial" [| 2; 4 |] (S.scan h [| 1; 3 |]);
  S.update h 1 20;
  S.update h 3 40;
  Alcotest.(check (array int)) "updated" [| 20; 40 |] (S.scan h [| 1; 3 |])

let test_domains_linearizable (module S : SNAP) () =
  let m = 6 in
  let init = Array.init m (fun i -> -(i + 1)) in
  let now = make_now () in
  let t = S.create ~n:4 (Array.copy init) in
  (* per-domain histories merged afterwards (the recorder is not
     thread-safe; timestamps are globally ordered) *)
  let hists = Array.init 4 (fun _ -> History.create ~now ()) in
  let updater pid () =
    let h = S.handle t ~pid in
    for k = 1 to 300 do
      let i = (k + pid) mod m in
      let v = (pid * 10_000) + k in
      ignore
        (History.record hists.(pid) ~pid (Snapshot_spec.Update (i, v))
           (fun () ->
             S.update h i v;
             Snapshot_spec.Ack))
    done
  in
  let scanner pid idxs () =
    let h = S.handle t ~pid in
    for _ = 1 to 100 do
      ignore
        (History.record hists.(pid) ~pid (Snapshot_spec.Scan idxs) (fun () ->
             Snapshot_spec.Vals (S.scan h idxs)))
    done
  in
  let domains =
    [
      Domain.spawn (updater 0);
      Domain.spawn (updater 1);
      Domain.spawn (scanner 2 [| 0; 2; 4 |]);
      Domain.spawn (scanner 3 [| 1; 2; 5 |]);
    ]
  in
  List.iter Domain.join domains;
  let entries =
    Array.to_list hists |> List.concat_map History.entries
  in
  match Snapshot_spec.check_observations ~init entries with
  | [] -> ()
  | v :: _ -> Alcotest.failf "violation: %a" Snapshot_spec.pp_violation v

let test_splitter_domains () =
  (* concurrent first-time acquisitions on real atomics: all six processes
     must end up with distinct owned nodes and be visible *)
  let module Sp = Mc_aset_splitter in
  for _ = 1 to 20 do
    let t = Sp.create ~n:6 () in
    let domains =
      List.init 6 (fun pid ->
          Domain.spawn (fun () ->
              let h = Sp.handle t ~pid in
              Sp.join h))
    in
    List.iter Domain.join domains;
    Alcotest.(check (list int))
      "all six acquired" [ 0; 1; 2; 3; 4; 5 ] (Sp.get_set t)
  done

let test_activeset_domains () =
  let module A = Mc_aset_fai in
  let a = A.create ~n:4 () in
  let stop = Atomic.make false in
  let ok = Atomic.make true in
  let member pid () =
    let h = A.handle a ~pid in
    for _ = 1 to 500 do
      A.join h;
      if not (List.mem pid (A.get_set a)) then Atomic.set ok false;
      A.leave h
    done
  in
  let observer () =
    while not (Atomic.get stop) do
      let s = A.get_set a in
      if List.exists (fun p -> p < 0 || p > 3) s then Atomic.set ok false
    done
  in
  let obs = Domain.spawn observer in
  let members = List.init 3 (fun pid -> Domain.spawn (member pid)) in
  List.iter Domain.join members;
  Atomic.set stop true;
  Domain.join obs;
  Alcotest.(check bool) "self visible while joined; members sane" true
    (Atomic.get ok)

let test_fig3_collect_bound_atomic () =
  (* The 2r+1 collect bound is schedule-independent, so it must hold under
     preemptive domain scheduling too. *)
  let module S = Mc_fig3 in
  let m = 8 in
  let t = S.create ~n:3 (Array.init m (fun i -> -(i + 1))) in
  let stop = Atomic.make false in
  let upd pid () =
    let h = S.handle t ~pid in
    let k = ref 0 in
    while not (Atomic.get stop) do
      incr k;
      S.update h (!k mod m) ((pid * 1_000_000) + !k)
    done
  in
  let u0 = Domain.spawn (upd 0) and u1 = Domain.spawn (upd 1) in
  let h = S.handle t ~pid:2 in
  let worst = ref 0 in
  let r = 3 in
  for _ = 1 to 200 do
    ignore (S.scan h [| 1; 4; 6 |]);
    worst := max !worst (S.last_scan_collects h)
  done;
  Atomic.set stop true;
  Domain.join u0;
  Domain.join u1;
  Alcotest.(check bool)
    (Printf.sprintf "collects %d <= %d" !worst ((2 * r) + 1))
    true
    (!worst <= (2 * r) + 1)

let per_impl name f =
  List.map
    (fun (iname, m) -> Alcotest.test_case (iname ^ ": " ^ name) `Quick (f m))
    impls

let () =
  Alcotest.run "atomic-backend"
    [
      ("sequential", per_impl "basic" test_sequential);
      ("domains", per_impl "2 updaters + 2 scanners" test_domains_linearizable);
      ( "activeset",
        [
          Alcotest.test_case "members under churn" `Quick test_activeset_domains;
          Alcotest.test_case "splitter acquisitions" `Quick
            test_splitter_domains;
        ] );
      ( "fig3",
        [
          Alcotest.test_case "collect bound under preemption" `Quick
            test_fig3_collect_bound_atomic;
        ] );
    ]
