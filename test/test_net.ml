(* Tests of the message-passing backend (lib/net): ABD quorum registers
   over the simulated transport.  Covers duplicate-delivery idempotence
   of the phase messages (a dup-flooded run stays atomic), partition-heal
   convergence (a replica cut for a long window catches up from the held
   messages and never serves a stale regression), bounded unavailability
   (a client cut off from every replica gets [Unavailable], not a
   livelock, and trips its circuit breaker), replay determinism (the same
   decision schedule reproduces the identical trace, network faults
   included), and the committed E19 witness schedule, which must drive
   the write-back-free weak read mode to a new/old inversion while the
   sound ABD mode survives the very same schedule. *)

open Psnap
module A = Psnap.Net.Abd
module T = Psnap.Net.Transport
module NSnap = Psnap_snapshot.Partial_nonblocking.Make (A.Sim_mem)
module NM = A.Sim_mem

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- direct register workloads ---- *)

(* One writer bumping a register, one reader polling it: any linearizable
   single-writer register must show the reader a non-decreasing sequence. *)
let monotone_workload ?(mode = A.Abd) ?(writes = 10) ?(reads = 20)
    ?(record_trace = false) ?(with_recover = false) ~replicas ~sched () =
  Metrics.reset_net ();
  Sim.reset_prerun_oids ();
  let cl = A.cluster ~mode ~clients:2 ~replicas () in
  let r = NM.make ~name:"x" 0 in
  let observed = ref [] in
  let gave_up = ref 0 in
  let attempt f = try f () with Psnap.Net.Unavailable _ -> incr gave_up in
  let writer () =
    for k = 1 to writes do
      attempt (fun () -> NM.write r k)
    done
  in
  let reader () =
    for _ = 1 to reads do
      attempt (fun () -> observed := NM.read r :: !observed)
    done
  in
  let procs =
    [|
      A.wrap_client cl ~pid:0 writer;
      A.wrap_client cl ~pid:1 reader;
      A.replica_body cl ~index:0;
      A.replica_body cl ~index:1;
      (if replicas > 2 then A.replica_body cl ~index:2 else fun () -> ());
    |]
  in
  let procs = Array.sub procs 0 (2 + replicas) in
  let recover =
    if with_recover then
      Some
        (fun ~pid ~incarnation:_ ->
          if pid < 2 then A.close_client cl ~pid
          else A.replica_body cl ~index:(pid - 2))
    else None
  in
  let res = Sim.run ~record_trace ?recover ~sched procs in
  (res, List.rev !observed, !gave_up)

let is_monotone vs =
  let rec go = function
    | a :: (b :: _ as rest) -> a <= b && go rest
    | _ -> true
  in
  go vs

let all_nodes ~clients ~replicas = List.init (clients + replicas) Fun.id

let test_dup_flood_idempotent () =
  (* Duplicated phase messages must be absorbed by the tag comparison on
     Put and the per-request reply filtering on Get: reads stay atomic. *)
  let hit = ref false in
  for seed = 0 to 9 do
    let sched =
      Scheduler.dup_flood ~seed ~inflight:T.Sim.inflight_links ~rate:0.3
        (Scheduler.random ~seed ())
    in
    let _, observed, gave_up =
      monotone_workload ~replicas:3 ~sched ()
    in
    check_int "no faults beyond duplication: nothing gives up" 0 gave_up;
    check_bool "reads monotone under duplicate delivery" true
      (is_monotone observed);
    let n = Metrics.net () in
    if n.Metrics.dups > 0 then begin
      hit := true;
      check_bool "duplicates really delivered" true
        (n.Metrics.delivers > n.Metrics.sends - n.Metrics.drops)
    end
  done;
  check_bool "campaign injected duplicates" true !hit

let test_partition_heal_convergence () =
  (* Replica 2 is unreachable for a long window: writes land on the
     remaining majority, the held messages drain at heal, and no read —
     before, during, or after — may regress.  The write-back repairs any
     quorum that includes the caught-up replica. *)
  let clients = 2 and replicas = 3 in
  let victim = clients + 2 in
  for seed = 0 to 9 do
    let sched =
      Scheduler.heal_after ~victim
        ~peers:(all_nodes ~clients ~replicas)
        ~at_clock:40 ~after:400
        (Scheduler.random ~seed ())
    in
    let _, observed, gave_up =
      monotone_workload ~writes:10 ~reads:30 ~replicas ~sched ()
    in
    check_int "majority stays reachable: nothing gives up" 0 gave_up;
    check_bool "reads monotone across cut and heal" true
      (is_monotone observed);
    let n = Metrics.net () in
    check_bool "the window actually cut links" true (n.Metrics.cuts > 0);
    check_bool "and healed them" true (n.Metrics.heals > 0)
  done

let test_quorum_loss_unavailable_not_hang () =
  (* Client 0 is cut off from everyone before its first operation: every
     phase must exhaust its bounded attempts and surface [Unavailable]
    (the run terminating at all is the no-livelock claim), and the
     repeated failures must trip the client's circuit breaker. *)
  Metrics.reset_net ();
  Metrics.reset_serving ();
  Sim.reset_prerun_oids ();
  let clients = 1 and replicas = 3 in
  let cl = A.cluster ~clients ~replicas () in
  let r = NM.make ~name:"x" 0 in
  let gave_up = ref 0 in
  let body () =
    for k = 1 to 3 do
      try NM.write r k
      with Psnap.Net.Unavailable _ -> incr gave_up
    done
  in
  let sched =
    Scheduler.heal_after ~victim:0
      ~peers:(all_nodes ~clients ~replicas)
      ~at_clock:1 ~after:10_000_000
      (Scheduler.round_robin ())
  in
  let procs =
    [|
      A.wrap_client cl ~pid:0 body;
      A.replica_body cl ~index:0;
      A.replica_body cl ~index:1;
      A.replica_body cl ~index:2;
    |]
  in
  let _ = Sim.run ~sched procs in
  check_int "all three writes gave up" 3 !gave_up;
  let n = Metrics.net () in
  check_bool "unavailability counted" true (n.Metrics.unavailable >= 3);
  let sv = Metrics.serving () in
  check_bool "breaker opened" true (sv.Metrics.breaker_opens >= 1)

let trace_signature (res : Sim.result) =
  List.map
    (function
      | Event.Step { pid; op; clock; _ } -> (pid, op, clock)
      | Event.Crash { pid; clock } -> (pid, Event.Read, -clock)
      | Event.Restart { pid; clock; _ } -> (pid, Event.Write, -clock)
      | Event.Mem_fault { oid; clock; _ } -> (oid, Event.Cas, -clock)
      | Event.Power_loss { clock } -> (-1, Event.Faa, -clock)
      | Event.Net_fault { src; dst; clock; _ } ->
        (src + dst, Event.Faa, -clock)
      | Event.Reconfig { clock } -> (-2, Event.Faa, -clock))
    res.Sim.trace

let test_replay_deterministic () =
  (* Record a partition-stormed run, replay its decision schedule: the
     trace — fault injections included — must be identical. *)
  let stormy seed =
    Scheduler.partition_storm ~seed
      ~nodes:(all_nodes ~clients:2 ~replicas:3)
      ~rate:0.05 ~heal_after:300
      (Scheduler.random ~seed ())
  in
  let record =
    let sched = stormy 7 in
    let res, _, _ =
      monotone_workload ~record_trace:true ~replicas:3 ~sched ()
    in
    res
  in
  let decisions = Trace.schedule record.Sim.trace in
  check_bool "schedule non-empty" true (decisions <> []);
  let replayed =
    let sched =
      Scheduler.replay_decisions ~lenient:true
        ~fallback:(Scheduler.round_robin ()) decisions
    in
    let res, _, _ =
      monotone_workload ~record_trace:true ~replicas:3 ~sched ()
    in
    res
  in
  check_bool "identical trace on replay" true
    (trace_signature record = trace_signature replayed)

let test_power_loss_replay_deterministic () =
  (* A blackout against the net backend: every client and replica halts
     in the same decision, replicas reboot from their durable store cells
     (each store write is a completed synchronous step — no un-synced
     tail to drop), clients restart only to close their sessions.  The
     recorded schedule must carry the [powerloss] decision and replay to
     the identical trace, and reads must stay monotone across the
     blackout (a store cell may never regress). *)
  let blackout seed =
    Scheduler.power_loss_at ~at_clock:150
      (Scheduler.partition_storm ~seed
         ~nodes:(all_nodes ~clients:2 ~replicas:3)
         ~rate:0.05 ~heal_after:300
         (Scheduler.random ~seed ()))
  in
  let record =
    let res, observed, _ =
      monotone_workload ~record_trace:true ~with_recover:true ~replicas:3
        ~sched:(blackout 3) ()
    in
    check_bool "reads monotone across the blackout" true
      (is_monotone observed);
    res
  in
  check_bool "the blackout fired" true
    (List.exists
       (function Event.Power_loss _ -> true | _ -> false)
       record.Sim.trace);
  check_bool "the blackout halted the machine" true
    (record.Sim.crashed <> []);
  let decisions = Trace.schedule record.Sim.trace in
  check_bool "schedule carries the powerloss decision" true
    (List.exists (fun d -> d = Scheduler.Power_loss) decisions);
  let replayed =
    let res, observed, _ =
      monotone_workload ~record_trace:true ~with_recover:true ~replicas:3
        ~sched:
          (Scheduler.replay_decisions ~lenient:true
             ~fallback:(Scheduler.round_robin ()) decisions)
        ()
    in
    check_bool "replayed reads monotone" true (is_monotone observed);
    res
  in
  check_bool "identical trace on power-loss replay" true
    (trace_signature record = trace_signature replayed)

(* ---- linearizability of pending-op histories under partition storms ---- *)

module Reg_spec = struct
  type state = int
  type op = Rwrite of int | Rread
  type res = Rack | Rval of int

  let apply s = function
    | Rwrite v -> (v, Rack)
    | Rread -> (s, Rval s)

  let equal_res (a : res) (b : res) = a = b
end

module RL = Lin_check.Make (Reg_spec)

let test_lincheck_under_partition_storm () =
  (* A partition storm makes some operations give up as [Unavailable]
     mid-phase: their history entries stay pending, and the Wing–Gong
     checker must still accept the history — a cut write either reached a
     quorum before the client gave up (a later read may see it) or it did
     not.  The storm campaign must actually strand operations, otherwise
     the pending-op path of the checker was never exercised. *)
  let clients = 2 and replicas = 3 in
  let pending_total = ref 0 in
  let cut_total = ref 0 in
  for seed = 0 to 9 do
    Metrics.reset_net ();
    Sim.reset_prerun_oids ();
    let sched =
      Scheduler.partition_storm ~seed
        ~nodes:(all_nodes ~clients ~replicas)
        ~rate:0.08 ~heal_after:2500
        (Scheduler.random ~seed ())
    in
    let cl = A.cluster ~clients ~replicas () in
    let r = NM.make ~name:"sx" 0 in
    let hist = History.create ~now:Sim.mark () in
    let attempt f = try f () with Psnap.Net.Unavailable _ -> () in
    let writer () =
      for k = 1 to 10 do
        attempt (fun () ->
            ignore
              (History.record hist ~pid:0 (Reg_spec.Rwrite k) (fun () ->
                   NM.write r k;
                   Reg_spec.Rack)))
      done
    in
    let reader () =
      for _ = 1 to 20 do
        attempt (fun () ->
            ignore
              (History.record hist ~pid:1 Reg_spec.Rread (fun () ->
                   Reg_spec.Rval (NM.read r))))
      done
    in
    let procs =
      Array.init (clients + replicas) (fun pid ->
          if pid = 0 then A.wrap_client cl ~pid writer
          else if pid = 1 then A.wrap_client cl ~pid reader
          else A.replica_body cl ~index:(pid - clients))
    in
    let _ = Sim.run ~sched procs in
    let entries = History.entries hist in
    pending_total :=
      !pending_total
      + List.length (List.filter History.is_pending entries);
    cut_total := !cut_total + (Metrics.net ()).Metrics.cuts;
    check_bool
      (Printf.sprintf "seed %d: stormed ABD history linearizable" seed)
      true
      (RL.check ~init:0 entries)
  done;
  check_bool "the storm really cut links" true (!cut_total > 0);
  check_bool "some operations were stranded pending" true (!pending_total > 0)

(* ---- the committed E19 witness ---- *)

let e19_witness =
  if Sys.file_exists "schedules/e19-abd-weak.sched" then
    "schedules/e19-abd-weak.sched"
  else "../schedules/e19-abd-weak.sched"

(* Mirror of bin/simulate.ml's run_net workload at the witness's
   parameters: nonblocking snapshot, 3 updaters x 12 updates, 3 scanners
   x 8 scans, m = 4, r = 4, 3 replicas. *)
let replay_witness ~mode =
  let updaters = 3 and scanners = 3 and updates = 12 and scans = 8 in
  let m = 4 and r = 4 and replicas = 3 in
  let n = updaters + scanners in
  let init = Array.init m (fun i -> -(i + 1)) in
  let decisions = Shrink.load e19_witness in
  check_bool "witness committed and shrunk" true
    (decisions <> [] && List.length decisions <= 600);
  let sched =
    Scheduler.replay_decisions ~lenient:true
      ~fallback:(Scheduler.round_robin ()) decisions
  in
  let hist = History.create ~now:Sim.mark () in
  Sim.reset_prerun_oids ();
  let cl = A.cluster ~mode ~clients:n ~replicas () in
  let t = NSnap.create ~n (Array.copy init) in
  let attempt f = try f () with Psnap.Net.Unavailable _ -> () in
  let updater pid () =
    let h = NSnap.handle t ~pid in
    for k = 1 to updates do
      let i = (k + (pid * 7)) mod m in
      let v = (pid * 1_000_000) + 10_000 + k in
      attempt (fun () ->
          ignore
            (History.record hist ~pid (Snapshot_spec.Update (i, v))
               (fun () ->
                 NSnap.update h i v;
                 Snapshot_spec.Ack)))
    done
  in
  let scanner pid () =
    let h = NSnap.handle t ~pid in
    let idxs =
      Array.init r (fun k -> ((pid - updaters) + (k * (m / max r 1))) mod m)
      |> Array.to_list |> List.sort_uniq compare |> Array.of_list
    in
    for _ = 1 to scans do
      attempt (fun () ->
          ignore
            (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
                 Snapshot_spec.Vals (NSnap.scan h idxs))))
    done
  in
  let procs =
    Array.init (n + replicas) (fun pid ->
        if pid < n then
          A.wrap_client cl ~pid
            (if pid < updaters then updater pid else scanner pid)
        else A.replica_body cl ~index:(pid - n))
  in
  let recover =
    Some
      (fun ~pid ~incarnation:_ ->
        if pid < n then A.close_client cl ~pid
        else A.replica_body cl ~index:(pid - n))
  in
  let _ = Sim.run ?recover ~sched procs in
  Snapshot_spec.check_observations ~init (History.entries hist)

let test_e19_witness_kills_weak_mode () =
  let viols = replay_witness ~mode:A.Weak in
  check_bool "weak reads produce a new/old inversion" true (viols <> [])

let test_e19_witness_clean_on_abd () =
  let viols = replay_witness ~mode:A.Abd in
  check_bool "the write-back survives the same schedule" true (viols = [])

let () =
  Alcotest.run "net"
    [
      ( "abd",
        [
          Alcotest.test_case "dup-flood idempotent (10 seeds)" `Quick
            test_dup_flood_idempotent;
          Alcotest.test_case "partition-heal convergence (10 seeds)" `Quick
            test_partition_heal_convergence;
          Alcotest.test_case "quorum loss: Unavailable, not a hang" `Quick
            test_quorum_loss_unavailable_not_hang;
          Alcotest.test_case "replay deterministic" `Quick
            test_replay_deterministic;
          Alcotest.test_case "lin check under partition storm (10 seeds)"
            `Quick test_lincheck_under_partition_storm;
          Alcotest.test_case "power-loss replay deterministic" `Quick
            test_power_loss_replay_deterministic;
        ] );
      ( "e19",
        [
          Alcotest.test_case "witness kills weak mode" `Quick
            test_e19_witness_kills_weak_mode;
          Alcotest.test_case "witness clean on abd" `Quick
            test_e19_witness_clean_on_abd;
        ] );
    ]
