(* Tests of the serving layer (lib/runtime): histogram binning and
   percentiles, zipfian sampling, the sharded snapshot's partitioners and
   cross-shard atomicity (exact checker on small histories, observation
   checker under a chaos nemesis), and a loadgen smoke run on real
   domains.  The relaxed sharded mode is also driven to an actual
   linearizability violation, so the validated mode's extra round is
   demonstrably load-bearing. *)

open Psnap
module Hist = Psnap.Runtime.Histogram
module Loadgen = Psnap.Runtime.Loadgen
module M = Psnap_sched.Mem_sim

let () = M.set_strict true

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* ---- histogram: binning ---- *)

let test_small_values_exact () =
  for v = 0 to 63 do
    check_int "identity bucket" v (Hist.index_of v);
    check_int "exact midpoint" v (Hist.value_of (Hist.index_of v))
  done

let test_index_monotone_and_bounded_error () =
  let prev = ref (-1) in
  let v = ref 1 in
  while !v < 1 lsl 50 do
    List.iter
      (fun d ->
        let x = !v + d in
        if x > 0 then begin
          let i = Hist.index_of x in
          check_bool "monotone" true (i >= !prev);
          prev := i;
          let lo, w = Hist.bucket_bounds i in
          check_bool "bucket contains value" true (x >= lo && x < lo + w);
          let mid = Hist.value_of i in
          check_bool "relative error <= 1/32" true
            (abs (mid - x) <= max 1 (x / 32))
        end)
      [ -1; 0; 1; 17 ];
    v := !v * 2;
    prev := -1 (* d=-1 of the next octave is below d=17 of this one *)
  done

let test_empty_histogram () =
  let h = Hist.create () in
  check_int "count" 0 (Hist.count h);
  check_int "p50 of empty" 0 (Hist.percentile h 50.0);
  check_int "min" 0 (Hist.min_value h);
  check_int "max" 0 (Hist.max_value h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Hist.mean h)

let test_single_sample () =
  let h = Hist.create () in
  Hist.record h 123_456;
  List.iter
    (fun p -> check_int "every percentile is the sample" 123_456 (Hist.percentile h p))
    [ 0.0; 50.0; 99.0; 99.9; 100.0 ];
  check_int "count" 1 (Hist.count h);
  check_int "min" 123_456 (Hist.min_value h);
  check_int "max" 123_456 (Hist.max_value h)

let test_percentiles_uniform () =
  let h = Hist.create () in
  for v = 1 to 1000 do
    Hist.record h v
  done;
  let p50 = Hist.percentile h 50.0 in
  check_bool "p50 near 500" true (abs (p50 - 500) <= 500 / 32 + 1);
  check_int "p100 clamps to max" 1000 (Hist.percentile h 100.0);
  let p99 = Hist.percentile h 99.0 in
  check_bool "p99 near 990" true (abs (p99 - 990) <= 990 / 32 + 1)

let test_merge () =
  let a = Hist.create () and b = Hist.create () and direct = Hist.create () in
  for v = 1 to 2000 do
    Hist.record (if v mod 2 = 0 then a else b) (v * 7);
    Hist.record direct (v * 7)
  done;
  let m = Hist.merge a b in
  check_int "count adds" (Hist.count a + Hist.count b) (Hist.count m);
  check_int "sum adds" (Hist.total direct) (Hist.total m);
  check_int "min" (Hist.min_value direct) (Hist.min_value m);
  check_int "max" (Hist.max_value direct) (Hist.max_value m);
  List.iter
    (fun p ->
      check_int "merged percentile = direct percentile"
        (Hist.percentile direct p) (Hist.percentile m p))
    [ 1.0; 50.0; 90.0; 99.0; 99.9 ]

let test_merge_with_empty_is_identity () =
  let a = Hist.create () in
  List.iter (Hist.record a) [ 3; 5000; 70 ];
  let m = Hist.merge a (Hist.create ()) in
  check_int "count" (Hist.count a) (Hist.count m);
  check_int "p50" (Hist.percentile a 50.0) (Hist.percentile m 50.0);
  check_int "max" (Hist.max_value a) (Hist.max_value m)

let test_merge_of_two_empties () =
  let m = Hist.merge (Hist.create ()) (Hist.create ()) in
  check_int "count" 0 (Hist.count m);
  check_int "total" 0 (Hist.total m);
  check_int "min" 0 (Hist.min_value m);
  check_int "max" 0 (Hist.max_value m);
  check_int "percentile of merged empties" 0 (Hist.percentile m 50.0);
  check_bool "no buckets" true (Hist.buckets m = [])

let test_merge_into_empty_dst () =
  let src = Hist.create () in
  List.iter (Hist.record src) [ 10; 20; 30 ];
  let dst = Hist.create () in
  Hist.merge_into ~dst src;
  check_int "count copied" 3 (Hist.count dst);
  check_int "total copied" 60 (Hist.total dst);
  check_int "min copied" 10 (Hist.min_value dst);
  check_int "max copied" 30 (Hist.max_value dst);
  (* and the other direction: merging an empty src is a no-op *)
  Hist.merge_into ~dst (Hist.create ());
  check_int "empty src leaves dst alone" 3 (Hist.count dst);
  check_int "percentiles intact" (Hist.percentile src 50.0)
    (Hist.percentile dst 50.0)

let test_percentile_clamping () =
  let h = Hist.create () in
  for v = 1 to 100 do
    Hist.record h (v * 1000)
  done;
  (* p outside [0..100] behaves exactly like the clamped endpoint *)
  check_int "p < 0 clamps to p0" (Hist.percentile h 0.0)
    (Hist.percentile h (-5.0));
  check_int "p0 is min" (Hist.min_value h) (Hist.percentile h 0.0);
  check_int "p > 100 clamps to p100" (Hist.percentile h 100.0)
    (Hist.percentile h 250.0);
  check_bool "p100 within the observed range" true
    (Hist.percentile h 100.0 <= Hist.max_value h
    && Hist.percentile h 100.0 >= Hist.min_value h);
  (* clamping on an empty histogram stays 0, not an exception *)
  let e = Hist.create () in
  check_int "empty at p<0" 0 (Hist.percentile e (-1.0));
  check_int "empty at p>100" 0 (Hist.percentile e 101.0)

(* ---- zipfian sampler ---- *)

let freqs ~theta ~n ~samples ~seed =
  let z = Loadgen.Zipf.create ~theta ~n in
  let rng = Random.State.make [| seed |] in
  let counts = Array.make n 0 in
  for _ = 1 to samples do
    let i = Loadgen.Zipf.sample z rng in
    check_bool "sample in range" true (i >= 0 && i < n);
    counts.(i) <- counts.(i) + 1
  done;
  counts

let test_zipf_deterministic () =
  let a = freqs ~theta:0.99 ~n:64 ~samples:2000 ~seed:7 in
  let b = freqs ~theta:0.99 ~n:64 ~samples:2000 ~seed:7 in
  check_bool "same seed, same draws" true (a = b)

let test_zipf_head_mass () =
  (* theta=1, n=100: P(rank 0) = 1/H_100 ~ 0.193 *)
  let c = freqs ~theta:1.0 ~n:100 ~samples:10_000 ~seed:1 in
  check_bool "head rank dominates" true (c.(0) > 1_500);
  check_bool "head >> rank 9" true (c.(0) > 3 * c.(9));
  check_bool "ranks decay" true (c.(0) > c.(1) && c.(1) > c.(10))

let test_zipf_theta_zero_is_uniform () =
  let n = 10 in
  let c = freqs ~theta:0.0 ~n ~samples:10_000 ~seed:2 in
  Array.iter
    (fun k -> check_bool "roughly uniform" true (abs (k - 1000) < 300))
    c

(* ---- sharded snapshot: partitioners (sequential, Atomic backend) ---- *)

let sharded_mc ~shards ~partition ~mode :
    (module Snapshot.S) =
  (module Psnap_runtime.Sharded.Make (Mem.Atomic) (Mc_fig3)
            (struct
              let shards = shards
              let partition = partition
              let mode = mode
            end))

let roundtrip (module S : Snapshot.S) ~m =
  let t = S.create ~n:1 (Array.init m (fun i -> i * 100)) in
  let h = S.handle t ~pid:0 in
  let all = Array.init m Fun.id in
  Alcotest.(check (array int))
    "initial values in index order"
    (Array.init m (fun i -> i * 100))
    (S.scan h all);
  (* overwrite every component through the partitioner, read back both a
     full scan and scattered partial scans *)
  for i = 0 to m - 1 do
    S.update h i ((i * 7) + 1)
  done;
  Alcotest.(check (array int))
    "updated values in index order"
    (Array.init m (fun i -> (i * 7) + 1))
    (S.scan h all);
  let idxs = [| m - 1; 0; m / 2 |] in
  Alcotest.(check (array int))
    "scattered partial scan"
    (Array.map (fun i -> (i * 7) + 1) idxs)
    (S.scan h idxs)

let test_partitioners_roundtrip () =
  List.iter
    (fun partition ->
      (* m=10, shards=3 exercises uneven shard sizes in both layouts *)
      roundtrip (sharded_mc ~shards:3 ~partition ~mode:`Validated) ~m:10;
      roundtrip (sharded_mc ~shards:3 ~partition ~mode:`Relaxed) ~m:10;
      (* more shards than components: clamps to one component per shard *)
      roundtrip (sharded_mc ~shards:8 ~partition ~mode:`Validated) ~m:3)
    [ `Round_robin; `Range ]

(* ---- sharded snapshot: exact linearizability on small histories ---- *)

let test_sharded_exact_lincheck () =
  let m = 4 in
  let init = Array.init m (fun i -> -(i + 1)) in
  for seed = 0 to 9 do
    let hist = History.create ~now:Sim.mark () in
    Sim.reset_prerun_oids ();
    let t = Sim_sharded_fig3.create ~n:3 (Array.copy init) in
    let updater pid () =
      let h = Sim_sharded_fig3.handle t ~pid in
      for k = 1 to 2 do
        let i = (k + pid) mod m in
        let v = (pid * 100) + k in
        ignore
          (History.record hist ~pid (Snapshot_spec.Update (i, v)) (fun () ->
               Sim_sharded_fig3.update h i v;
               Snapshot_spec.Ack))
      done
    in
    let scanner pid () =
      let h = Sim_sharded_fig3.handle t ~pid in
      (* indices 0 and 3 land in different shards under round-robin x4 *)
      let idxs = [| 0; 3 |] in
      for _ = 1 to 2 do
        ignore
          (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
               Snapshot_spec.Vals (Sim_sharded_fig3.scan h idxs)))
      done
    in
    ignore
      (Sim.run
         ~sched:(Scheduler.random ~seed ())
         [| updater 0; updater 1; scanner 2 |]);
    check_bool
      (Printf.sprintf "seed %d linearizable (exact checker)" seed)
      true
      (Snapshot_spec.check ~init (History.entries hist))
  done

(* ---- sharded snapshot: chaos-nemesis campaign (observation checker) ---- *)

let test_sharded_linearizable_under_chaos () =
  let m = 8 and n = 3 in
  let init = Array.init m (fun i -> -(i + 1)) in
  let restarts = ref 0 in
  for seed = 0 to 24 do
    let hist = History.create ~now:Sim.mark () in
    Sim.reset_prerun_oids ();
    let t = Sim_sharded_fig3.create ~n (Array.copy init) in
    let updater ~incarnation pid () =
      let h = Sim_sharded_fig3.handle t ~pid in
      for k = 1 to 6 do
        let i = (k + (pid * 3)) mod m in
        let v = (pid * 1_000_000) + (incarnation * 10_000) + k in
        ignore
          (History.record hist ~pid (Snapshot_spec.Update (i, v)) (fun () ->
               Sim_sharded_fig3.update h i v;
               Snapshot_spec.Ack))
      done
    in
    let scanner pid () =
      let h = Sim_sharded_fig3.handle t ~pid in
      (* spans three of the four shards *)
      let idxs = [| 0; 2; 5 |] in
      for _ = 1 to 4 do
        ignore
          (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
               Snapshot_spec.Vals (Sim_sharded_fig3.scan h idxs)))
      done
    in
    let body ~incarnation pid =
      if pid < n - 1 then updater ~incarnation pid else scanner pid
    in
    let recover ~pid ~incarnation = body ~incarnation pid in
    let res =
      Sim.run ~recover
        ~sched:(Scheduler.chaos ~seed ~rate:0.08 ~max_restart_delay:12 ())
        (Array.init n (body ~incarnation:1))
    in
    restarts :=
      !restarts + Array.fold_left (fun a i -> a + (i - 1)) 0 res.incarnations;
    let viols = Snapshot_spec.check_observations ~init (History.entries hist) in
    if viols <> [] then
      Alcotest.failf "seed %d: %a" seed
        Fmt.(list ~sep:comma Snapshot_spec.pp_violation)
        (List.filteri (fun i _ -> i < 3) viols)
  done;
  check_bool "campaign injected restarts" true (!restarts > 0)

(* ---- relaxed mode really is weaker: drive it to a violation ---- *)

module Sim_sharded_relaxed =
  Psnap_runtime.Sharded.Make (Mem.Sim) (Sim_fig3)
    (struct
      let shards = 3
      let partition = `Round_robin
      let mode = `Relaxed
    end)

let test_relaxed_mode_violates () =
  let m = 32 in
  let init = Array.init m (fun i -> -(i + 1)) in
  let violations = ref 0 in
  for seed = 0 to 4 do
    let hist = History.create ~now:Sim.mark () in
    Sim.reset_prerun_oids ();
    let t = Sim_sharded_relaxed.create ~n:5 (Array.copy init) in
    let updater pid () =
      let h = Sim_sharded_relaxed.handle t ~pid in
      for k = 1 to 30 do
        let i = (k + (pid * 7)) mod m in
        let v = (pid * 1_000_000) + k in
        ignore
          (History.record hist ~pid (Snapshot_spec.Update (i, v)) (fun () ->
               Sim_sharded_relaxed.update h i v;
               Snapshot_spec.Ack))
      done
    in
    let scanner pid () =
      let h = Sim_sharded_relaxed.handle t ~pid in
      let idxs = [| 0; 1; 2; 9; 10; 17; 25; 30 |] in
      for _ = 1 to 8 do
        ignore
          (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
               Snapshot_spec.Vals (Sim_sharded_relaxed.scan h idxs)))
      done
    in
    ignore
      (Sim.run
         ~sched:(Scheduler.random ~seed ())
         [| updater 0; updater 1; updater 2; scanner 3; scanner 4 |]);
    violations :=
      !violations
      + List.length
          (Snapshot_spec.check_observations ~init (History.entries hist))
  done;
  check_bool "relaxed cross-shard scans are observably non-atomic" true
    (!violations > 0)

(* ---- E17: the committed ddmin-shrunk witness still reproduces ---- *)

(* `dune runtest` runs from the test directory inside _build (where the
   dune deps clause stages the schedule one level up); `dune exec` runs
   from the workspace root. *)
let e17_witness =
  if Sys.file_exists "schedules/e17-sharded-relaxed.sched" then
    "schedules/e17-sharded-relaxed.sched"
  else "../schedules/e17-sharded-relaxed.sched"

let test_e17_witness_replays () =
  let m = 32 and r = 8 and updaters = 3 in
  let init = Array.init m (fun i -> -(i + 1)) in
  let decisions = Shrink.load e17_witness in
  check_bool "witness committed and shrunk" true
    (decisions <> [] && List.length decisions <= 60);
  let hist = History.create ~now:Sim.mark () in
  Sim.reset_prerun_oids ();
  let t = Sim_sharded_relaxed.create ~n:5 (Array.copy init) in
  (* exactly the simulate.exe workload the witness was shrunk against
     (bin/simulate.ml run_flat, incarnation 1) — replay is only meaningful
     against the same program *)
  let updater pid () =
    let h = Sim_sharded_relaxed.handle t ~pid in
    for k = 1 to 30 do
      let i = (k + (pid * 7)) mod m in
      let v = (pid * 1_000_000) + 10_000 + k in
      ignore
        (History.record hist ~pid (Snapshot_spec.Update (i, v)) (fun () ->
             Sim_sharded_relaxed.update h i v;
             Snapshot_spec.Ack))
    done
  in
  let scanner pid () =
    let h = Sim_sharded_relaxed.handle t ~pid in
    let idxs =
      Array.init r (fun k -> ((pid - updaters) + (k * (m / r))) mod m)
      |> Array.to_list |> List.sort_uniq compare |> Array.of_list
    in
    for _ = 1 to 8 do
      ignore
        (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
             Snapshot_spec.Vals (Sim_sharded_relaxed.scan h idxs)))
    done
  in
  ignore
    (Sim.run
       ~sched:
         (Scheduler.replay_decisions ~lenient:true
            ~fallback:(Scheduler.round_robin ()) decisions)
       [| updater 0; updater 1; updater 2; scanner 3; scanner 4 |]);
  let viols = Snapshot_spec.check_observations ~init (History.entries hist) in
  check_bool "shrunk witness still drives a relaxed violation" true
    (viols <> [])

(* ---- loadgen smoke on real domains ---- *)

let test_loadgen_smoke () =
  let rep =
    Loadgen.run
      (module Mc_fig3)
      {
        Loadgen.default with
        m = 64;
        r = 4;
        domains = 2;
        warmup_s = 0.02;
        duration_s = 0.1;
      }
  in
  check_bool "did updates" true (rep.Loadgen.updates > 0);
  check_bool "did scans" true (rep.Loadgen.scans > 0);
  check_bool "positive throughput" true (Loadgen.throughput rep > 0.0);
  check_int "histograms match counters" rep.Loadgen.updates
    (Hist.count rep.Loadgen.update_lat)

let test_loadgen_validates_config () =
  let bad cfg =
    match Loadgen.run (module Mc_fig3) cfg with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "r > m rejected" true
    (bad { Loadgen.default with m = 4; r = 8 });
  check_bool "dedicated roles must sum to domains" true
    (bad
       {
         Loadgen.default with
         domains = 2;
         mix = Loadgen.Dedicated { updaters = 2; scanners = 2 };
       });
  check_bool "open-loop rate must be positive" true
    (bad { Loadgen.default with loop = Loadgen.Open_rate 0.0 })

let () =
  Alcotest.run "runtime"
    [
      ( "histogram",
        [
          Alcotest.test_case "small values exact" `Quick test_small_values_exact;
          Alcotest.test_case "monotone, bounded error" `Quick
            test_index_monotone_and_bounded_error;
          Alcotest.test_case "empty" `Quick test_empty_histogram;
          Alcotest.test_case "single sample" `Quick test_single_sample;
          Alcotest.test_case "uniform percentiles" `Quick
            test_percentiles_uniform;
          Alcotest.test_case "merge = direct" `Quick test_merge;
          Alcotest.test_case "merge with empty" `Quick
            test_merge_with_empty_is_identity;
          Alcotest.test_case "merge of two empties" `Quick
            test_merge_of_two_empties;
          Alcotest.test_case "merge_into with empty dst" `Quick
            test_merge_into_empty_dst;
          Alcotest.test_case "percentile clamping" `Quick
            test_percentile_clamping;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "deterministic" `Quick test_zipf_deterministic;
          Alcotest.test_case "head mass" `Quick test_zipf_head_mass;
          Alcotest.test_case "theta=0 uniform" `Quick
            test_zipf_theta_zero_is_uniform;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "partitioners roundtrip" `Quick
            test_partitioners_roundtrip;
          Alcotest.test_case "exact lincheck, small histories" `Quick
            test_sharded_exact_lincheck;
          Alcotest.test_case "linearizable under chaos (25 seeds)" `Quick
            test_sharded_linearizable_under_chaos;
          Alcotest.test_case "e17 witness replays to a violation" `Quick
            test_e17_witness_replays;
          Alcotest.test_case "relaxed mode violates" `Quick
            test_relaxed_mode_violates;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "smoke (2 domains)" `Quick test_loadgen_smoke;
          Alcotest.test_case "config validation" `Quick
            test_loadgen_validates_config;
        ] );
    ]
