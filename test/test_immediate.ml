(* The one-shot immediate snapshot's three properties — self-inclusion,
   containment, immediacy — checked directly on every view, under random,
   PCT and exhaustively enumerated schedules, with and without crashes. *)

open Psnap
module IS = Psnap_snapshot.Immediate.Make (Psnap.Mem.Sim)

let check_bool = Alcotest.(check bool)

module PairSet = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let check_properties views =
  (* views : (pid, view) list for the processes that finished *)
  let sets = List.map (fun (pid, v) -> (pid, PairSet.of_list v)) views in
  List.iter
    (fun (pid, s) ->
      check_bool "self-inclusion" true
        (PairSet.exists (fun (q, _) -> q = pid) s))
    sets;
  List.iter
    (fun (_, si) ->
      List.iter
        (fun (_, sj) ->
          check_bool "containment" true
            (PairSet.subset si sj || PairSet.subset sj si))
        sets)
    sets;
  List.iter
    (fun (i, si) ->
      ignore i;
      List.iter
        (fun (j, sj) ->
          if PairSet.exists (fun (q, _) -> q = j) si then
            check_bool "immediacy" true (PairSet.subset sj si))
        sets)
    sets

let run_views ~n ~sched =
  let t = IS.create ~n in
  let out = Array.make n None in
  let procs =
    Array.init n (fun pid () -> out.(pid) <- Some (IS.participate t ~pid (100 + pid)))
  in
  let res = Sim.run ~sched procs in
  ignore res;
  Array.to_list out
  |> List.mapi (fun pid v -> (pid, v))
  |> List.filter_map (fun (pid, v) -> Option.map (fun v -> (pid, v)) v)

let test_solo () =
  match run_views ~n:1 ~sched:(Scheduler.round_robin ()) with
  | [ (0, [ (0, 100) ]) ] -> ()
  | _ -> Alcotest.fail "solo view should be exactly itself"

let test_random_schedules () =
  for seed = 0 to 99 do
    let views = run_views ~n:5 ~sched:(Scheduler.random ~seed ()) in
    Alcotest.(check int) "all finished" 5 (List.length views);
    check_properties views
  done

let test_pct_schedules () =
  for seed = 0 to 49 do
    let views =
      run_views ~n:6 ~sched:(Scheduler.pct ~seed ~expected_steps:300 ())
    in
    check_properties views
  done

let test_crash_tolerance () =
  for seed = 0 to 29 do
    let t = IS.create ~n:4 in
    let out = Array.make 4 None in
    let procs =
      Array.init 4 (fun pid () ->
          out.(pid) <- Some (IS.participate t ~pid (100 + pid)))
    in
    let sched =
      Scheduler.with_crash ~pid:(seed mod 4) ~at_clock:(seed mod 13)
        (Scheduler.random ~seed ())
    in
    ignore (Sim.run ~sched procs);
    let views =
      Array.to_list out
      |> List.mapi (fun pid v -> (pid, v))
      |> List.filter_map (fun (pid, v) -> Option.map (fun v -> (pid, v)) v)
    in
    check_bool "survivors finished" true (List.length views >= 3);
    check_properties views
  done

let test_exhaustive_pair () =
  (* two processes, every interleaving: the only legal outcomes are
     {i alone} vs {both} views with immediacy *)
  let schedules = ref 0 in
  let make () =
    let t = IS.create ~n:2 in
    let out = Array.make 2 None in
    let procs =
      Array.init 2 (fun pid () ->
          out.(pid) <- Some (IS.participate t ~pid (100 + pid)))
    in
    ( procs,
      fun () ->
        incr schedules;
        let views =
          Array.to_list out
          |> List.mapi (fun pid v -> (pid, Option.get v))
        in
        check_properties views )
  in
  ignore (Explore.run ~make ());
  check_bool
    (Printf.sprintf "schedules: %d" !schedules)
    true (!schedules > 50)

let () =
  Alcotest.run "immediate_snapshot"
    [
      ( "properties",
        [
          Alcotest.test_case "solo" `Quick test_solo;
          Alcotest.test_case "random schedules" `Quick test_random_schedules;
          Alcotest.test_case "pct schedules" `Quick test_pct_schedules;
          Alcotest.test_case "crashes" `Quick test_crash_tolerance;
          Alcotest.test_case "exhaustive pair" `Quick test_exhaustive_pair;
        ] );
    ]
