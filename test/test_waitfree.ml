(* Wait-freedom and worst-case step bounds.

   Theorem 3's headline claim: a Figure 3 partial scan of r components
   finishes within 2r+1 collects — O(r²) steps — no matter what the
   adversary and the other processes do, and independently of m and n.
   These tests starve the scanner behind update storms and assert the exact
   bounds; companion tests check Figure 1's and Afek's scans are wait-free
   (bounded by contention) and that operations survive crashes of everyone
   else. *)

open Psnap

let check_bool = Alcotest.(check bool)

(* scan step budget for Figure 3: announce(1) + join(<=4) + collects
   ((2r+1) * r reads) + leave(2); extraction is local *)
let fig3_scan_budget r = ((2 * r) + 1) * r + 7

(* A scan measurement harness: [updaters] storm components while one
   scanner performs [scans] measured scans of [idxs]; returns max steps and
   max collects over the scans. *)
let measure_scans (sched_of : int -> Scheduler.t) ~seeds ~m ~updaters ~updates
    ~idxs ~scans =
  let module S = Sim_fig3 in
  let worst_steps = ref 0 and worst_collects = ref 0 in
  for seed = 0 to seeds - 1 do
    let t = S.create ~n:(updaters + 1) (Array.init m (fun i -> -i - 1)) in
    let scanner_pid = updaters in
    let rec_ = Metrics.create () in
    let procs =
      Array.init (updaters + 1) (fun pid ->
          if pid < updaters then fun () ->
            let h = S.handle t ~pid in
            for k = 1 to updates do
              S.update h ((k + pid) mod m) ((pid * 100_000) + k)
            done
          else fun () ->
            let h = S.handle t ~pid in
            for _ = 1 to scans do
              Metrics.measure rec_ ~pid ~kind:"scan" (fun () ->
                  ignore (S.scan h idxs));
              worst_collects := max !worst_collects (S.last_scan_collects h)
            done)
    in
    ignore (Sim.run ~sched:(sched_of seed) procs);
    ignore scanner_pid;
    worst_steps :=
      max !worst_steps (Metrics.max_steps (Metrics.by_kind rec_ "scan"))
  done;
  (!worst_steps, !worst_collects)

let test_fig3_scan_bound () =
  List.iter
    (fun r ->
      let idxs = Array.init r (fun i -> i * 2) in
      let steps, collects =
        measure_scans
          (fun seed -> Scheduler.starve ~victims:[ 4 ] ~seed ())
          ~seeds:15 ~m:16 ~updaters:4 ~updates:60 ~idxs ~scans:5
      in
      check_bool
        (Printf.sprintf "r=%d: collects %d <= %d" r collects ((2 * r) + 1))
        true
        (collects <= (2 * r) + 1);
      check_bool
        (Printf.sprintf "r=%d: steps %d <= %d" r steps (fig3_scan_budget r))
        true
        (steps <= fig3_scan_budget r))
    [ 1; 2; 4; 8 ]

let test_fig3_scan_independent_of_m () =
  (* Same r, two very different m: the worst-case scan cost must obey the
     same m-independent budget (locality). *)
  let r = 4 in
  let idxs = Array.init r (fun i -> i) in
  let run m =
    fst
      (measure_scans
         (fun seed -> Scheduler.starve ~victims:[ 3 ] ~seed ())
         ~seeds:10 ~m ~updaters:3 ~updates:40 ~idxs ~scans:5)
  in
  let small = run 8 and large = run 1024 in
  check_bool
    (Printf.sprintf "m=8: %d within budget" small)
    true
    (small <= fig3_scan_budget r);
  check_bool
    (Printf.sprintf "m=1024: %d within budget" large)
    true
    (large <= fig3_scan_budget r)

let test_fig3_scan_independent_of_updater_count () =
  (* Doubling the adversary updaters must not move the worst-case budget. *)
  let r = 3 in
  let idxs = [| 0; 1; 2 |] in
  let run updaters =
    fst
      (measure_scans
         (fun seed -> Scheduler.starve ~victims:[ updaters ] ~seed ())
         ~seeds:10 ~m:8 ~updaters ~updates:40 ~idxs ~scans:5)
  in
  let a = run 2 and b = run 8 in
  check_bool (Printf.sprintf "2 updaters: %d" a) true (a <= fig3_scan_budget r);
  check_bool (Printf.sprintf "8 updaters: %d" b) true (b <= fig3_scan_budget r)

(* Figure 1: scans are wait-free with a contention-dependent bound —
   collects <= 2*Cu + 1 where Cu is the number of update operations
   overlapping the scan (coarsely bounded here by all updates). *)
let test_fig1_scan_waitfree_under_storm () =
  let module S = Sim_fig1 in
  for seed = 0 to 9 do
    let updaters = 3 and updates = 50 in
    let t = S.create ~n:(updaters + 1) (Array.init 8 (fun i -> -i - 1)) in
    let finished = ref 0 in
    let worst_collects = ref 0 in
    let procs =
      Array.init (updaters + 1) (fun pid ->
          if pid < updaters then fun () ->
            let h = S.handle t ~pid in
            for k = 1 to updates do
              S.update h ((k + pid) mod 8) ((pid * 100_000) + k)
            done
          else fun () ->
            let h = S.handle t ~pid in
            for _ = 1 to 5 do
              ignore (S.scan h [| 0; 3; 5 |]);
              worst_collects := max !worst_collects (S.last_scan_collects h);
              incr finished
            done)
    in
    ignore
      (Sim.run ~sched:(Scheduler.starve ~victims:[ updaters ] ~seed ()) procs);
    Alcotest.(check int) "all scans finished" 5 !finished;
    check_bool
      (Printf.sprintf "collects %d bounded by 2*updates+1" !worst_collects)
      true
      (!worst_collects <= (2 * updaters * updates) + 1)
  done

(* Everyone else crashes; the survivor's operations still complete, and in
   the solo suffix a Figure 3 scan costs the contention-free minimum. *)
let test_survivor_completes () =
  let module S = Sim_fig3 in
  for seed = 0 to 9 do
    let t = S.create ~n:3 (Array.init 6 (fun i -> -i - 1)) in
    let scans_done = ref 0 in
    let procs =
      [|
        (fun () ->
          let h = S.handle t ~pid:0 in
          for k = 1 to 30 do
            S.update h (k mod 6) k
          done);
        (fun () ->
          let h = S.handle t ~pid:1 in
          for k = 1 to 30 do
            S.update h ((k + 3) mod 6) (100_000 + k)
          done);
        (fun () ->
          let h = S.handle t ~pid:2 in
          for _ = 1 to 4 do
            ignore (S.scan h [| 1; 4 |]);
            incr scans_done
          done);
      |]
    in
    let sched =
      Scheduler.with_crash ~pid:0 ~at_clock:(5 + seed)
        (Scheduler.with_crash ~pid:1 ~at_clock:(9 + seed)
           (Scheduler.random ~seed ()))
    in
    let res = Sim.run ~sched procs in
    Alcotest.(check int) "scanner finished all scans" 4 !scans_done;
    Alcotest.(check (list int)) "both updaters crashed" [ 0; 1 ]
      (List.sort compare res.crashed)
  done

(* Updates are wait-free too: under scanner churn, every update finishes
   (the individually-expensive getSet is still bounded in any finite
   execution). *)
let test_updates_complete_under_scanner_churn () =
  let module S = Sim_fig3 in
  for seed = 0 to 9 do
    let t = S.create ~n:4 (Array.init 6 (fun i -> -i - 1)) in
    let updates_done = ref 0 in
    let procs =
      [|
        (fun () ->
          let h = S.handle t ~pid:0 in
          for k = 1 to 20 do
            S.update h (k mod 6) k;
            incr updates_done
          done);
        (fun () ->
          let h = S.handle t ~pid:1 in
          for _ = 1 to 15 do
            ignore (S.scan h [| 0; 2 |])
          done);
        (fun () ->
          let h = S.handle t ~pid:2 in
          for _ = 1 to 15 do
            ignore (S.scan h [| 1; 2; 3 |])
          done);
        (fun () ->
          let h = S.handle t ~pid:3 in
          for _ = 1 to 15 do
            ignore (S.scan h [| 4 |])
          done);
      |]
    in
    ignore (Sim.run ~sched:(Scheduler.starve ~victims:[ 0 ] ~seed ()) procs);
    Alcotest.(check int) "updates all done" 20 !updates_done
  done

(* The paper's motivation for helping (Section 3): without it, "a slow
   scanner can keep seeing different collects if fast updates are
   concurrently being performed".  Under a schedule that completes one
   update between any two collects, the helping-free double-collect scan
   diverges while Figure 3 finishes within its cap — same adversary. *)
let test_nonblocking_diverges_where_fig3_terminates () =
  let r = 2 in
  let adversary scanner_pid updates_done =
    (* alternate: one full update, then r scanner steps (one collect) *)
    let target = ref None in
    let budget = ref 0 in
    let pick (view : Scheduler.view) =
      let runnable = view.Scheduler.runnable in
      let mem p = Array.exists (fun q -> q = p) runnable in
      let rec go guard =
        if guard = 0 then Scheduler.Run runnable.(0)
        else
          match !target with
          | Some base ->
            if mem 0 && !updates_done <= base then Scheduler.Run 0
            else begin
              target := None;
              budget := r;
              go (guard - 1)
            end
          | None ->
            if !budget > 0 && mem scanner_pid then begin
              decr budget;
              Scheduler.Run scanner_pid
            end
            else if mem 0 then begin
              target := Some !updates_done;
              go (guard - 1)
            end
            else Scheduler.Run scanner_pid
      in
      go 4
    in
    { Scheduler.name = "update-per-collect"; pick }
  in
  (* non-blocking: diverges (gives up after 100 collects) *)
  let module N = Sim_nonblocking in
  let nb = N.create ~n:2 [| 0; 0 |] in
  let updates_done = ref 0 in
  let starved = ref false in
  let procs =
    [|
      (fun () ->
        let h = N.handle nb ~pid:0 in
        for k = 1 to 3000 do
          N.update h (k mod 2) k;
          incr updates_done
        done);
      (fun () ->
        let h = N.handle nb ~pid:1 in
        N.set_max_collects h 100;
        match N.scan h [| 0; 1 |] with
        | _ -> ()
        | exception Psnap.Snapshot.Starved -> starved := true);
    |]
  in
  ignore (Sim.run ~sched:(adversary 1 updates_done) procs);
  Alcotest.(check bool) "non-blocking scan starved" true !starved;
  (* Figure 3 under the same adversary: completes within the cap *)
  let module S = Sim_fig3 in
  let t = S.create ~n:2 [| 0; 0 |] in
  let updates_done = ref 0 in
  let collects = ref 0 in
  let procs =
    [|
      (fun () ->
        let h = S.handle t ~pid:0 in
        for k = 1 to 3000 do
          S.update h (k mod 2) k;
          incr updates_done
        done);
      (fun () ->
        let h = S.handle t ~pid:1 in
        ignore (S.scan h [| 0; 1 |]);
        collects := S.last_scan_collects h);
    |]
  in
  ignore (Sim.run ~sched:(adversary 1 updates_done) procs);
  Alcotest.(check bool)
    (Printf.sprintf "fig3 completed in %d collects" !collects)
    true
    (!collects > 0 && !collects <= (2 * r) + 1)

(* Contention-free fast path: a solo Figure 3 scan is two collects. *)
let test_fig3_solo_scan_cost () =
  let module S = Sim_fig3 in
  let t = S.create ~n:1 (Array.init 32 (fun i -> i)) in
  let steps = ref 0 and collects = ref 0 in
  let procs =
    [|
      (fun () ->
        let h = S.handle t ~pid:0 in
        let s0 = Sim.steps_of 0 in
        ignore (S.scan h [| 3; 9; 27 |]);
        steps := Sim.steps_of 0 - s0;
        collects := S.last_scan_collects h);
    |]
  in
  ignore (Sim.run ~sched:(Scheduler.round_robin ()) procs);
  Alcotest.(check int) "two collects" 2 !collects;
  (* announce 1 + join <= 4 + 2 collects * 3 reads + leave 2 = 13 *)
  check_bool (Printf.sprintf "solo cost %d <= 13" !steps) true (!steps <= 13)

let () =
  Alcotest.run "waitfree"
    [
      ( "fig3-theorem3",
        [
          Alcotest.test_case "scan bound 2r+1 collects" `Quick
            test_fig3_scan_bound;
          Alcotest.test_case "independent of m" `Quick
            test_fig3_scan_independent_of_m;
          Alcotest.test_case "independent of updaters" `Quick
            test_fig3_scan_independent_of_updater_count;
          Alcotest.test_case "solo scan cost" `Quick test_fig3_solo_scan_cost;
        ] );
      ( "fig1",
        [
          Alcotest.test_case "scan wait-free under storm" `Quick
            test_fig1_scan_waitfree_under_storm;
        ] );
      ( "helping-necessity",
        [
          Alcotest.test_case "non-blocking diverges, fig3 terminates" `Quick
            test_nonblocking_diverges_where_fig3_terminates;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "survivor completes" `Quick test_survivor_completes;
        ] );
      ( "updates",
        [
          Alcotest.test_case "complete under scanner churn" `Quick
            test_updates_complete_under_scanner_churn;
        ] );
    ]
