(* White-box tests of the embedded-scan engine: both termination rules on
   hand-crafted interleavings, the borrowing regressions, and the
   Fresh/Borrowed extraction paths.  The "updater" here writes crafted
   cells directly, so each scenario controls exactly which tags and views
   the scanner observes, step by step. *)

open Psnap
module M = Mem.Sim
module C = Snapshot.Collect.Make (Psnap.Mem.Sim) (Snapshot.View_repr.Direct)
module Tag = Snapshot.Tag
module View = Snapshot.View

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let cell ?(view = View.empty) ~pid ~seq v = { C.v; view; tag = Tag.W { pid; seq } }

let view_of l = View.of_pairs l

(* run scanner (pid 0) and writer (pid 1) under a forced schedule prefix *)
let run_two ~schedule scanner writer =
  ignore
    (Sim.run
       ~sched:(Scheduler.replay_then schedule (Scheduler.round_robin ()))
       [| scanner; writer |])

let test_quiescent_is_two_fresh_collects () =
  let regs = Array.init 4 (fun i -> M.make (C.init_cell (i * 10))) in
  let result = ref None in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [| (fun () -> result := Some (C.scan_per_location regs [| 1; 3 |])) |]);
  match !result with
  | Some (C.Fresh (idxs, vals), st) ->
    Alcotest.(check (array int)) "indices" [| 1; 3 |] idxs;
    Alcotest.(check (array int)) "values" [| 10; 30 |] vals;
    check_int "collects" 2 st.collects;
    check_bool "not borrowed" false st.borrowed
  | Some (C.Borrowed _, _) -> Alcotest.fail "unexpected borrow"
  | None -> Alcotest.fail "no result"

let test_empty_scan_is_free () =
  let regs = Array.init 2 (fun _ -> M.make (C.init_cell 0)) in
  let steps = ref (-1) in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           let s0 = Sim.steps_of 0 in
           (match C.scan_per_location regs [||] with
           | C.Fresh ([||], [||]), st -> check_int "collects" 0 st.collects
           | _ -> Alcotest.fail "expected empty fresh result");
           steps := Sim.steps_of 0 - s0);
       |]);
  check_int "zero steps" 0 !steps

let test_unsorted_indices_rejected () =
  let regs = Array.init 3 (fun _ -> M.make (C.init_cell 0)) in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           match C.scan_per_location regs [| 2; 1 |] with
           | _ -> Alcotest.fail "expected Invalid_argument"
           | exception Invalid_argument _ -> ());
       |])

(* per-location rule: the third distinct value in one location is borrowed,
   with its view, on the collect where it appears *)
let test_per_location_borrows_third_value () =
  let view_b = view_of [ (0, 777); (5, 555) ] in
  let regs = Array.init 2 (fun _ -> M.make (C.init_cell 0)) in
  let result = ref None in
  let scanner () = result := Some (C.scan_per_location regs [| 0; 1 |]) in
  let writer () =
    M.write regs.(0) (cell ~pid:1 ~seq:1 10);
    M.write regs.(0) (cell ~view:view_b ~pid:1 ~seq:2 20)
  in
  (* collect1 (2 steps), write1, collect2 (2), write2, first read of
     collect3 sees the third distinct value of location 0 *)
  run_two ~schedule:[ 0; 0; 1; 0; 0; 1; 0 ] scanner writer;
  match !result with
  | Some (C.Borrowed v, st) ->
    check_bool "borrowed exactly view_b" true (v == view_b);
    check_int "three collects" 3 st.collects;
    check_bool "flagged" true st.borrowed
  | Some (C.Fresh _, _) -> Alcotest.fail "expected a borrow"
  | None -> Alcotest.fail "no result"

(* regression for the unsound literal reading of Figure 1's condition (2):
   three distinct same-process values already sitting in different
   registers prove nothing and must NOT trigger a borrow *)
let test_per_process_ignores_stale_values () =
  let stale_view = view_of [ (0, -1) ] in
  let regs =
    [|
      M.make (cell ~view:stale_view ~pid:9 ~seq:1 100);
      M.make (cell ~view:stale_view ~pid:9 ~seq:2 200);
      M.make (cell ~view:stale_view ~pid:9 ~seq:3 300);
    |]
  in
  let result = ref None in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [| (fun () -> result := Some (C.scan_per_process regs [| 0; 1; 2 |])) |]);
  match !result with
  | Some (C.Fresh (_, vals), st) ->
    Alcotest.(check (array int)) "current values" [| 100; 200; 300 |] vals;
    check_int "two collects" 2 st.collects
  | Some (C.Borrowed _, _) ->
    Alcotest.fail "borrowed stale values (unsound condition (2) reading)"
  | None -> Alcotest.fail "no result"

(* per-process rule: two observed changes by the same process trigger the
   borrow, taking the higher-counter view *)
let test_per_process_borrows_after_two_observed_changes () =
  let view_a = view_of [ (0, 1) ] and view_c = view_of [ (0, 2); (1, 3) ] in
  let regs = Array.init 2 (fun _ -> M.make (C.init_cell 0)) in
  let result = ref None in
  let scanner () = result := Some (C.scan_per_process regs [| 0; 1 |]) in
  let writer () =
    M.write regs.(0) (cell ~view:view_a ~pid:1 ~seq:1 10);
    M.write regs.(1) (cell ~view:view_c ~pid:1 ~seq:2 30)
  in
  (* collect1, write reg0, collect2 (change #1 at loc 0), write reg1,
     collect3: loc 0 unchanged, loc 1 changed (change #2, same pid) *)
  run_two ~schedule:[ 0; 0; 1; 0; 0; 1; 0; 0 ] scanner writer;
  match !result with
  | Some (C.Borrowed v, st) ->
    check_bool "borrowed the higher-seq view" true (v == view_c);
    check_int "three collects" 3 st.collects
  | Some (C.Fresh _, _) -> Alcotest.fail "expected a borrow"
  | None -> Alcotest.fail "no result"

(* a change by one process and a change by another do NOT trigger the
   per-process rule *)
let test_per_process_needs_same_process () =
  let regs = Array.init 2 (fun _ -> M.make (C.init_cell 0)) in
  let result = ref None in
  let scanner () = result := Some (C.scan_per_process regs [| 0; 1 |]) in
  let writer () =
    M.write regs.(0) (cell ~pid:1 ~seq:1 10);
    M.write regs.(1) (cell ~pid:2 ~seq:1 30)
    (* two writers simulated by crafted pids *)
  in
  run_two ~schedule:[ 0; 0; 1; 0; 0; 1; 0; 0; 0; 0 ] scanner writer;
  match !result with
  | Some (C.Fresh (_, vals), st) ->
    Alcotest.(check (array int)) "settled values" [| 10; 30 |] vals;
    (* collect1, collect2 (change), collect3 (change), collect4 = collect3 *)
    check_int "four collects" 4 st.collects
  | Some (C.Borrowed _, _) ->
    Alcotest.fail "borrowed on changes by different processes"
  | None -> Alcotest.fail "no result"

(* ---- the announcement board (shared by Figures 1 and 3) ---- *)

module Ann = Snapshot.Announce.Make (Psnap.Mem.Sim)

let test_announce_union () =
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           let a = Ann.create ~n:4 in
           Ann.announce a ~pid:0 [| 3; 1; 9 |];
           Ann.announce a ~pid:2 [| 1; 4 |];
           Alcotest.(check (array int))
             "union, sorted, deduped" [| 1; 3; 4; 9 |]
             (Ann.union_announced a [ 0; 2 ]);
           Alcotest.(check (array int))
             "empty scanner list" [||] (Ann.union_announced a []);
           Alcotest.(check (array int))
             "unannounced scanner contributes nothing" [| 1; 4 |]
             (Ann.union_announced a [ 1; 2 ]);
           (* re-announcing replaces *)
           Ann.announce a ~pid:2 [| 7 |];
           Alcotest.(check (array int))
             "replacement" [| 7 |] (Ann.union_announced a [ 2 ]));
       |])

let test_announce_cost () =
  let steps = ref 0 in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           let a = Ann.create ~n:8 in
           let s0 = Sim.steps_of 0 in
           ignore (Ann.union_announced a [ 0; 3; 5 ]);
           steps := Sim.steps_of 0 - s0);
       |]);
  check_int "one read per scanner" 3 !steps

(* extraction *)
let test_extract_fresh () =
  let r = C.Fresh ([| 2; 5; 9 |], [| 20; 50; 90 |]) in
  Alcotest.(check (array int))
    "aligned, duplicates, unordered" [| 90; 20; 20; 50 |]
    (C.extract r [| 9; 2; 2; 5 |]);
  Alcotest.check_raises "missing component"
    (Invalid_argument "Collect.extract: component not scanned") (fun () ->
      ignore (C.extract r [| 3 |]))

let test_extract_borrowed () =
  let v = view_of [ (1, 11); (4, 44); (6, 66) ] in
  let r = C.Borrowed v in
  Alcotest.(check (array int)) "lookups" [| 44; 11 |] (C.extract r [| 4; 1 |]);
  check_bool "missing raises" true
    (match C.extract r [| 2 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "collect"
    [
      ( "loop",
        [
          Alcotest.test_case "quiescent double collect" `Quick
            test_quiescent_is_two_fresh_collects;
          Alcotest.test_case "empty scan" `Quick test_empty_scan_is_free;
          Alcotest.test_case "unsorted rejected" `Quick
            test_unsorted_indices_rejected;
        ] );
      ( "per-location",
        [
          Alcotest.test_case "borrows third value" `Quick
            test_per_location_borrows_third_value;
        ] );
      ( "per-process",
        [
          Alcotest.test_case "ignores stale values (regression)" `Quick
            test_per_process_ignores_stale_values;
          Alcotest.test_case "borrows after two observed changes" `Quick
            test_per_process_borrows_after_two_observed_changes;
          Alcotest.test_case "needs the same process" `Quick
            test_per_process_needs_same_process;
        ] );
      ( "extract",
        [
          Alcotest.test_case "fresh" `Quick test_extract_fresh;
          Alcotest.test_case "borrowed" `Quick test_extract_borrowed;
        ] );
      ( "announce",
        [
          Alcotest.test_case "union" `Quick test_announce_union;
          Alcotest.test_case "cost" `Quick test_announce_cost;
        ] );
    ]
