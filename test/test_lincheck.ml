(* Self-tests of the correctness checkers: the Wing–Gong linearizability
   checker, the observation-based snapshot checker, and the active set
   validity checker.  A checker that never rejects anything would make the
   whole concurrent test suite vacuous, so known-bad histories are as
   important here as known-good ones. *)

open Psnap
module H = History
module S = Snapshot_spec
module A = Activeset_check

let entry ?res ~pid ~inv ?resp op : ('a, 'b) H.entry =
  { H.pid; op; res; inv; resp }

let check_bool = Alcotest.(check bool)

(* ---- snapshot linearizability: exact checker ---- *)

let lin = S.check ~init:[| 0; 0 |]

let test_empty_history () = check_bool "empty" true (lin [])

let test_sequential_ok () =
  check_bool "sequential" true
    (lin
       [
         entry ~pid:0 ~inv:1 ~resp:2 (S.Update (0, 5)) ~res:S.Ack;
         entry ~pid:0 ~inv:3 ~resp:4 (S.Scan [| 0; 1 |]) ~res:(S.Vals [| 5; 0 |]);
       ])

let test_sequential_stale_rejected () =
  check_bool "stale value rejected" false
    (lin
       [
         entry ~pid:0 ~inv:1 ~resp:2 (S.Update (0, 5)) ~res:S.Ack;
         entry ~pid:0 ~inv:3 ~resp:4 (S.Scan [| 0 |]) ~res:(S.Vals [| 0 |]);
       ])

let test_concurrent_either_order () =
  (* update and scan overlap: scan may see old or new value *)
  let h v =
    [
      entry ~pid:0 ~inv:1 ~resp:10 (S.Update (0, 5)) ~res:S.Ack;
      entry ~pid:1 ~inv:2 ~resp:9 (S.Scan [| 0 |]) ~res:(S.Vals [| v |]);
    ]
  in
  check_bool "sees old" true (lin (h 0));
  check_bool "sees new" true (lin (h 5));
  check_bool "sees garbage" false (lin (h 7))

let test_double_collect_violation () =
  (* The classic non-atomic collect anomaly: two sequential scans observe
     two concurrent updates in opposite orders. *)
  let h =
    [
      entry ~pid:0 ~inv:1 ~resp:20 (S.Update (0, 1)) ~res:S.Ack;
      entry ~pid:1 ~inv:1 ~resp:20 (S.Update (1, 1)) ~res:S.Ack;
      entry ~pid:2 ~inv:2 ~resp:5 (S.Scan [| 0; 1 |]) ~res:(S.Vals [| 1; 0 |]);
      entry ~pid:2 ~inv:6 ~resp:9 (S.Scan [| 0; 1 |]) ~res:(S.Vals [| 0; 1 |]);
    ]
  in
  check_bool "opposite orders rejected" false (lin h)

let test_real_time_order_enforced () =
  (* Scan strictly after an update must not miss it. *)
  let h =
    [
      entry ~pid:0 ~inv:1 ~resp:2 (S.Update (0, 5)) ~res:S.Ack;
      entry ~pid:1 ~inv:3 ~resp:4 (S.Scan [| 0 |]) ~res:(S.Vals [| 0 |]);
    ]
  in
  check_bool "missed preceding update" false (lin h)

let test_pending_update_may_apply () =
  (* A crashed update may or may not have taken effect. *)
  let base v =
    [
      entry ~pid:0 ~inv:1 (S.Update (0, 5)) (* pending *);
      entry ~pid:1 ~inv:2 ~resp:3 (S.Scan [| 0 |]) ~res:(S.Vals [| v |]);
    ]
  in
  check_bool "effect visible" true (lin (base 5));
  check_bool "effect invisible" true (lin (base 0));
  check_bool "garbage still rejected" false (lin (base 9))

let test_partial_scan_projection () =
  let h =
    [
      entry ~pid:0 ~inv:1 ~resp:2 (S.Update (1, 7)) ~res:S.Ack;
      entry ~pid:1 ~inv:3 ~resp:4 (S.Scan [| 1 |]) ~res:(S.Vals [| 7 |]);
      entry ~pid:1 ~inv:5 ~resp:6 (S.Scan [| 0 |]) ~res:(S.Vals [| 0 |]);
    ]
  in
  check_bool "partial scans" true (lin h)

let test_too_long_raises () =
  let h =
    List.init 63 (fun k ->
        entry ~pid:0 ~inv:(2 * k) ~resp:((2 * k) + 1) (S.Update (0, k)) ~res:S.Ack)
  in
  Alcotest.check_raises "length cap" (S.Checker.Too_long 63) (fun () ->
      ignore (lin h))

(* ---- observation-based checker ---- *)

(* unique values: init = -1, -2; writes use 100*pid + seq *)
let obs = S.check_observations ~init:[| -1; -2 |]

let test_obs_clean () =
  let h =
    [
      entry ~pid:0 ~inv:1 ~resp:2 (S.Update (0, 100)) ~res:S.Ack;
      entry ~pid:1 ~inv:3 ~resp:4 (S.Scan [| 0; 1 |]) ~res:(S.Vals [| 100; -2 |]);
    ]
  in
  Alcotest.(check int) "no violations" 0 (List.length (obs h))

let test_obs_future_read () =
  let h =
    [
      entry ~pid:1 ~inv:1 ~resp:2 (S.Scan [| 0 |]) ~res:(S.Vals [| 100 |]);
      entry ~pid:0 ~inv:3 ~resp:4 (S.Update (0, 100)) ~res:S.Ack;
    ]
  in
  check_bool "future read flagged" true (obs h <> [])

let test_obs_stale_read () =
  let h =
    [
      entry ~pid:0 ~inv:1 ~resp:2 (S.Update (0, 100)) ~res:S.Ack;
      entry ~pid:0 ~inv:3 ~resp:4 (S.Update (0, 101)) ~res:S.Ack;
      entry ~pid:1 ~inv:5 ~resp:6 (S.Scan [| 0 |]) ~res:(S.Vals [| 100 |]);
    ]
  in
  check_bool "overwritten value flagged" true (obs h <> [])

let test_obs_skew () =
  (* Cross-component: scan pairs a version with one that implies a
     linearization point after the first was overwritten. *)
  let h =
    [
      entry ~pid:0 ~inv:1 ~resp:2 (S.Update (0, 100)) ~res:S.Ack;
      entry ~pid:0 ~inv:3 ~resp:4 (S.Update (1, 101)) ~res:S.Ack;
      entry ~pid:0 ~inv:5 ~resp:6 (S.Update (0, 102)) ~res:S.Ack;
      entry ~pid:0 ~inv:7 ~resp:8 (S.Update (1, 103)) ~res:S.Ack;
      (* scan claims (c0=100, c1=103): 103 forces t >= 7, but 100 was
         overwritten by 102 which completed at 6 *)
      entry ~pid:1 ~inv:1 ~resp:10 (S.Scan [| 0; 1 |])
        ~res:(S.Vals [| 100; 103 |]);
    ]
  in
  check_bool "skewed cut flagged" true (obs h <> [])

let test_obs_monotonicity () =
  let h =
    [
      entry ~pid:0 ~inv:1 ~resp:2 (S.Update (0, 100)) ~res:S.Ack;
      entry ~pid:0 ~inv:3 ~resp:4 (S.Update (0, 101)) ~res:S.Ack;
      (* both updates completed; consecutive scans go backwards in time *)
      entry ~pid:1 ~inv:5 ~resp:6 (S.Scan [| 0 |]) ~res:(S.Vals [| 101 |]);
      entry ~pid:1 ~inv:7 ~resp:8 (S.Scan [| 0 |]) ~res:(S.Vals [| 100 |]);
    ]
  in
  check_bool "non-monotone scans flagged" true (obs h <> [])

let test_obs_concurrent_ok () =
  (* Concurrent updates: scans may see them in either order as long as each
     scan alone is consistent. *)
  let h =
    [
      entry ~pid:0 ~inv:1 ~resp:20 (S.Update (0, 100)) ~res:S.Ack;
      entry ~pid:1 ~inv:1 ~resp:20 (S.Update (1, 200)) ~res:S.Ack;
      entry ~pid:2 ~inv:2 ~resp:6 (S.Scan [| 0; 1 |]) ~res:(S.Vals [| 100; -2 |]);
      entry ~pid:3 ~inv:2 ~resp:6 (S.Scan [| 0; 1 |]) ~res:(S.Vals [| -1; 200 |]);
    ]
  in
  Alcotest.(check int) "no violations" 0 (List.length (obs h))

(* ---- active set validity ---- *)

let test_aset_valid () =
  let h =
    [
      entry ~pid:0 ~inv:1 ~resp:2 A.Join ~res:A.Ack;
      entry ~pid:1 ~inv:3 ~resp:4 A.Get_set ~res:(A.Set [ 0 ]);
      entry ~pid:0 ~inv:5 ~resp:6 A.Leave ~res:A.Ack;
      entry ~pid:1 ~inv:7 ~resp:8 A.Get_set ~res:(A.Set []);
    ]
  in
  Alcotest.(check int) "valid" 0 (List.length (A.check h))

let test_aset_missing_active () =
  let h =
    [
      entry ~pid:0 ~inv:1 ~resp:2 A.Join ~res:A.Ack;
      entry ~pid:1 ~inv:3 ~resp:4 A.Get_set ~res:(A.Set []);
    ]
  in
  check_bool "missing active flagged" true (A.check h <> [])

let test_aset_ghost_member () =
  let h =
    [
      entry ~pid:0 ~inv:1 ~resp:2 A.Join ~res:A.Ack;
      entry ~pid:0 ~inv:3 ~resp:4 A.Leave ~res:A.Ack;
      entry ~pid:1 ~inv:5 ~resp:6 A.Get_set ~res:(A.Set [ 0 ]);
    ]
  in
  check_bool "inactive member flagged" true (A.check h <> [])

let test_aset_never_joined () =
  let h = [ entry ~pid:1 ~inv:5 ~resp:6 A.Get_set ~res:(A.Set [ 9 ]) ] in
  check_bool "never-joined member flagged" true (A.check h <> [])

let test_aset_transitioning_free () =
  (* join overlaps the getSet: including or excluding are both valid *)
  let h incl =
    [
      entry ~pid:0 ~inv:2 ~resp:9 A.Join ~res:A.Ack;
      entry ~pid:1 ~inv:3 ~resp:4 A.Get_set ~res:(A.Set (if incl then [ 0 ] else []));
    ]
  in
  Alcotest.(check int) "included ok" 0 (List.length (A.check (h true)));
  Alcotest.(check int) "excluded ok" 0 (List.length (A.check (h false)))

let test_aset_crashed_leaver () =
  (* pending leave: membership of p0 is forever ambiguous *)
  let h incl =
    [
      entry ~pid:0 ~inv:1 ~resp:2 A.Join ~res:A.Ack;
      entry ~pid:0 ~inv:3 A.Leave (* pending *);
      entry ~pid:1 ~inv:10 ~resp:11 A.Get_set ~res:(A.Set (if incl then [ 0 ] else []));
    ]
  in
  Alcotest.(check int) "included ok" 0 (List.length (A.check (h true)));
  Alcotest.(check int) "excluded ok" 0 (List.length (A.check (h false)))

(* ---- the checker against a brute-force reference ---- *)

(* Reference decision procedure: enumerate every permutation of every
   subset that keeps all completed entries, check real-time order and
   responses by replay.  Exponential-factorial — only for <= 7 entries —
   but obviously correct, so it validates the Wing-Gong search. *)
let brute_force ~init entries =
  let completed, pending =
    List.partition (fun (e : _ H.entry) -> e.resp <> None) entries
  in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun l -> x :: l) s
  in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l
  in
  let respects_real_time order =
    let rec go = function
      | [] -> true
      | e :: later ->
        List.for_all (fun l -> not (H.precedes l e)) later && go later
    in
    go order
  in
  let responses_match order =
    let st = ref init in
    List.for_all
      (fun (e : _ H.entry) ->
        let st', r = S.Spec.apply !st e.op in
        st := st';
        match e.res with Some res -> res = r | None -> true)
      order
  in
  List.exists
    (fun chosen_pending ->
      List.exists
        (fun order -> respects_real_time order && responses_match order)
        (permutations (completed @ chosen_pending)))
    (subsets pending)

let random_history st =
  let n_ops = 1 + Random.State.int st 5 in
  let clock = ref 0 in
  List.init n_ops (fun _ ->
      let inv = !clock + Random.State.int st 3 in
      let len = 1 + Random.State.int st 6 in
      clock := inv + Random.State.int st 4;
      let pending = Random.State.int st 8 = 0 in
      let op =
        if Random.State.bool st then S.Update (Random.State.int st 2, Random.State.int st 3)
        else S.Scan [| Random.State.int st 2 |]
      in
      let res =
        if pending then None
        else
          Some
            (match op with
            | S.Update _ -> S.Ack
            | S.Scan _ -> S.Vals [| Random.State.int st 3 |])
      in
      {
        H.pid = Random.State.int st 3;
        op;
        res;
        inv;
        resp = (if pending then None else Some (inv + len));
      })

let test_checker_vs_brute_force () =
  let st = Random.State.make [| 2024 |] in
  let init = [| 0; 0 |] in
  let agreements = ref 0 in
  for _ = 1 to 400 do
    let h = random_history st in
    let expected = brute_force ~init h in
    let got = S.check ~init h in
    if expected <> got then
      Alcotest.failf "checker disagrees with brute force (expected %b)"
        expected;
    incr agreements
  done;
  Alcotest.(check int) "all random histories agreed" 400 !agreements

(* ---- history recorder ---- *)

let test_recorder () =
  let now =
    let c = ref 0 in
    fun () ->
      incr c;
      !c
  in
  let t = H.create ~now () in
  let r = H.record t ~pid:3 `Op (fun () -> 42) in
  Alcotest.(check int) "result passthrough" 42 r;
  match H.entries t with
  | [ e ] ->
    Alcotest.(check int) "pid" 3 e.pid;
    check_bool "completed" false (H.is_pending e);
    check_bool "interval ordered" true (e.inv < Option.get e.resp)
  | _ -> Alcotest.fail "one entry expected"

let () =
  Alcotest.run "lincheck"
    [
      ( "wing-gong",
        [
          Alcotest.test_case "empty" `Quick test_empty_history;
          Alcotest.test_case "sequential ok" `Quick test_sequential_ok;
          Alcotest.test_case "sequential stale" `Quick
            test_sequential_stale_rejected;
          Alcotest.test_case "concurrent either order" `Quick
            test_concurrent_either_order;
          Alcotest.test_case "double collect anomaly" `Quick
            test_double_collect_violation;
          Alcotest.test_case "real-time order" `Quick
            test_real_time_order_enforced;
          Alcotest.test_case "pending update" `Quick test_pending_update_may_apply;
          Alcotest.test_case "partial projection" `Quick
            test_partial_scan_projection;
          Alcotest.test_case "length cap" `Quick test_too_long_raises;
          Alcotest.test_case "agrees with brute force on 400 random histories"
            `Quick test_checker_vs_brute_force;
        ] );
      ( "observations",
        [
          Alcotest.test_case "clean" `Quick test_obs_clean;
          Alcotest.test_case "future read" `Quick test_obs_future_read;
          Alcotest.test_case "stale read" `Quick test_obs_stale_read;
          Alcotest.test_case "skewed cut" `Quick test_obs_skew;
          Alcotest.test_case "monotonicity" `Quick test_obs_monotonicity;
          Alcotest.test_case "concurrent ok" `Quick test_obs_concurrent_ok;
        ] );
      ( "active-set",
        [
          Alcotest.test_case "valid" `Quick test_aset_valid;
          Alcotest.test_case "missing active" `Quick test_aset_missing_active;
          Alcotest.test_case "ghost member" `Quick test_aset_ghost_member;
          Alcotest.test_case "never joined" `Quick test_aset_never_joined;
          Alcotest.test_case "transitioning free" `Quick
            test_aset_transitioning_free;
          Alcotest.test_case "crashed leaver" `Quick test_aset_crashed_leaver;
        ] );
      ("recorder", [ Alcotest.test_case "basic" `Quick test_recorder ]);
    ]
