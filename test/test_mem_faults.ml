(* The memory-fault model (docs/MODEL.md §9): per-kind cell semantics,
   decision plumbing (traces, schedule files, replay), the mem_storm /
   corrupt_on_op nemeses, and the destructive half of E15 — raw Figure 3
   produces non-linearizable histories under seeded corruption, and the
   failing schedule ddmin-shrinks to a minimal witness containing a fault
   decision. *)

open Psnap
module M = Mem.Sim

let () = M.set_strict true

let () = M.set_fault_tracking true

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let rr () = Scheduler.round_robin ()

let forced decisions =
  Scheduler.replay_decisions ~lenient:false ~fallback:(rr ()) decisions

let fault kind oid = Scheduler.Mem_fault { kind; oid }

let fresh_cell ?(v = 0) () =
  Sim.reset_prerun_oids ();
  M.reset_fault_counts ();
  M.make ~name:"x" v

(* ---- per-kind semantics on raw cells ---- *)

let test_corrupt_flips_immediate () =
  let r = fresh_cell ~v:41 () in
  let seen = ref 0 in
  let body () = seen := M.read r in
  ignore
    (Sim.run ~sched:(forced [ fault Event.Corrupt (M.oid r); Scheduler.Run 0 ])
       [| body |]);
  check_int "low bit flipped" 40 !seen;
  let c = M.fault_counts Event.Corrupt in
  check_int "injected" 1 c.M.injected;
  check_int "fired" 1 c.M.fired

let test_corrupt_garbles_block () =
  Sim.reset_prerun_oids ();
  M.reset_fault_counts ();
  let r = M.make ~name:"pair" (7, "payload") in
  let seen = ref (0, "") in
  let body () = seen := M.read r in
  ignore
    (Sim.run ~sched:(forced [ fault Event.Corrupt (M.oid r); Scheduler.Run 0 ])
       [| body |]);
  (* the duplicated block has its first immediate field bit-flipped; the
     rest is intact *)
  check_bool "first field flipped" true (fst !seen = 6);
  check_bool "second field intact" true (snd !seen = "payload")

let test_lost_write_drops_next_write () =
  let r = fresh_cell () in
  let seen = ref (-1) in
  let body () =
    M.write r 1;
    seen := M.read r
  in
  ignore
    (Sim.run
       ~sched:
         (forced
            [ fault Event.Lost_write (M.oid r); Scheduler.Run 0; Scheduler.Run 0 ])
       [| body |]);
  check_int "write vanished" 0 !seen;
  check_int "fired" 1 (M.fault_counts Event.Lost_write).M.fired

let test_acked_but_lost_cas () =
  let r = fresh_cell () in
  let ok = ref false in
  let seen = ref (-1) in
  let body () =
    ok := M.cas r ~expected:0 ~desired:5;
    seen := M.read r
  in
  ignore
    (Sim.run
       ~sched:
         (forced
            [ fault Event.Lost_write (M.oid r); Scheduler.Run 0; Scheduler.Run 0 ])
       [| body |]);
  check_bool "CAS acknowledged" true !ok;
  check_int "nothing installed" 0 !seen

let test_stale_read_serves_history_once () =
  let r = fresh_cell () in
  let first = ref (-1) and second = ref (-1) in
  let body () =
    M.write r 1;
    M.write r 2;
    first := M.read r;
    second := M.read r
  in
  ignore
    (Sim.run
       ~sched:
         (forced
            [
              Scheduler.Run 0;
              Scheduler.Run 0;
              fault Event.Stale_read (M.oid r);
              Scheduler.Run 0;
              Scheduler.Run 0;
            ])
       [| body |]);
  check_int "superseded value served once" 1 !first;
  check_int "then current again" 2 !second

let test_stale_read_needs_history () =
  let r = fresh_cell () in
  let body () = ignore (M.read r) in
  ignore
    (Sim.run ~sched:(forced [ fault Event.Stale_read (M.oid r); Scheduler.Run 0 ])
       [| body |]);
  (* no superseded value exists: the decision is absorbed, not armed *)
  let c = M.fault_counts Event.Stale_read in
  check_int "absorbed" 1 c.M.absorbed;
  check_int "not injected" 0 c.M.injected

let test_stuck_cell_refuses_writes_forever () =
  let r = fresh_cell () in
  let cas_ok = ref true in
  let seen = ref (-1) in
  let body () =
    M.write r 1;
    cas_ok := M.cas r ~expected:0 ~desired:2;
    seen := M.read r
  in
  ignore
    (Sim.run
       ~sched:
         (forced
            [
              fault Event.Stuck_cell (M.oid r);
              Scheduler.Run 0;
              Scheduler.Run 0;
              Scheduler.Run 0;
            ])
       [| body |]);
  check_int "frozen at initial value" 0 !seen;
  check_bool "CAS honestly fails" false !cas_ok;
  check_int "two writes refused" 2 (M.fault_counts Event.Stuck_cell).M.fired;
  (* a second stick of the same cell has no effect *)
  ignore
    (Sim.run ~sched:(forced [ fault Event.Stuck_cell (M.oid r); Scheduler.Run 0 ])
       [| (fun () -> ignore (M.read r)) |]);
  check_int "re-stick absorbed" 1 (M.fault_counts Event.Stuck_cell).M.absorbed

let test_unknown_oid_absorbed () =
  let _r = fresh_cell () in
  ignore
    (Sim.run
       ~sched:(forced [ fault Event.Corrupt 424242; Scheduler.Run 0 ])
       [| (fun () -> ignore (M.read _r)) |]);
  check_int "unknown cell absorbs" 1 (M.fault_counts Event.Corrupt).M.absorbed

(* ---- decision plumbing: serialization, traces, replay ---- *)

let test_schedule_file_roundtrip_with_faults () =
  let decisions =
    [
      Scheduler.Run 1;
      fault Event.Lost_write 3;
      fault Event.Stale_read (-2);
      fault Event.Corrupt 7;
      fault Event.Stuck_cell 0;
      Scheduler.Crash 0;
      Scheduler.Stop;
    ]
  in
  let path = Filename.temp_file "psnap" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Shrink.save path decisions;
      check_bool "roundtrip" true (Shrink.load path = decisions))

let test_trace_records_and_replays_faults () =
  Sim.reset_prerun_oids ();
  M.reset_fault_counts ();
  let mk () =
    Sim.reset_prerun_oids ();
    M.make ~name:"x" 0
  in
  let body r () =
    M.write r 1;
    ignore (M.read r)
  in
  let r1 = mk () in
  let decisions =
    [ fault Event.Corrupt (M.oid r1); Scheduler.Run 0; Scheduler.Run 0 ]
  in
  let res1 = Sim.run ~record_trace:true ~sched:(forced decisions) [| body r1 |] in
  let faults_in_trace = Trace.mem_faults res1.trace in
  check_bool "fault event recorded" true
    (faults_in_trace = [ (Event.Corrupt, (M.oid r1)) ]);
  (* the schedule extracted from the trace replays the same execution *)
  let sched = Trace.schedule res1.trace in
  let r2 = mk () in
  let res2 =
    Sim.run ~record_trace:true
      ~sched:(Scheduler.replay_decisions ~lenient:true ~fallback:(rr ()) sched)
      [| body r2 |]
  in
  check_bool "replay reproduces trace" true
    (Trace.schedule res2.trace = sched)

(* ---- nemeses ---- *)

let test_corrupt_on_op_hits_cas_window () =
  Sim.reset_prerun_oids ();
  M.reset_fault_counts ();
  let r = M.make ~name:"x" 0 in
  let ok = ref true in
  let seen = ref (-1) in
  let body () =
    ok := M.cas r ~expected:0 ~desired:7;
    seen := M.read r
  in
  ignore
    (Sim.run
       ~sched:(Scheduler.corrupt_on_op ~pid:0 ~op:Event.Cas (rr ()))
       [| body |]);
  (* the cell was garbled while pid 0 was suspended at its CAS: the CAS
     must fail (physical mismatch against the corrupted contents) *)
  check_bool "CAS lost to corruption" false !ok;
  check_int "corrupted value visible" 1 !seen;
  check_int "one corruption" 1 (M.fault_counts Event.Corrupt).M.injected

let test_mem_storm_injects_and_is_bounded () =
  M.reset_fault_counts ();
  let total = ref 0 in
  for seed = 0 to 19 do
    Sim.reset_prerun_oids ();
    let r = M.make ~name:"x" 0 in
    let body pid () =
      for k = 1 to 20 do
        M.write r ((pid * 100) + k);
        ignore (M.read r)
      done
    in
    let res =
      Sim.run ~record_trace:true
        ~sched:
          (Scheduler.mem_storm ~seed ~rate:0.2 ~max_faults:5
             (Scheduler.random ~seed ()))
        [| body 0; body 1 |]
    in
    let n = List.length (Trace.mem_faults res.trace) in
    check_bool "at most max_faults" true (n <= 5);
    total := !total + n
  done;
  check_bool "storm injected faults" true (!total > 0)

(* ---- E15, destructive half: raw Figure 3 breaks under corruption ---- *)

let fig3_mem_fault_run ~record_trace ~sched =
  let module S = Sim_fig3 in
  let m = 6 in
  let init = Array.init m (fun i -> -(i + 1)) in
  Sim.reset_prerun_oids ();
  let hist = History.create ~now:Sim.mark () in
  let t = S.create ~n:3 (Array.copy init) in
  let updater pid () =
    let h = S.handle t ~pid in
    for k = 1 to 5 do
      let i = (k + (pid * 3)) mod m in
      let v = (pid * 1_000_000) + k in
      ignore
        (History.record hist ~pid (Snapshot_spec.Update (i, v)) (fun () ->
             S.update h i v;
             Snapshot_spec.Ack))
    done
  in
  let scanner pid () =
    let h = S.handle t ~pid in
    let idxs = [| 0; 2; 4 |] in
    for _ = 1 to 3 do
      ignore
        (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
             Snapshot_spec.Vals (S.scan h idxs)))
    done
  in
  let procs = [| updater 0; updater 1; scanner 2 |] in
  let res = Sim.run ~record_trace ~sched procs in
  (res, Snapshot_spec.check_observations ~init (History.entries hist))

let storm_sched seed =
  Scheduler.mem_storm ~seed ~kinds:[ Event.Corrupt ] ~rate:0.08 ~max_faults:10
    (Scheduler.random ~seed ())

let find_failing_seed ~seeds =
  let rec go seed =
    if seed >= seeds then None
    else
      match fig3_mem_fault_run ~record_trace:true ~sched:(storm_sched seed) with
      | _, [] -> go (seed + 1)
      | res, _ :: _ -> Some (seed, res)
      | exception _ -> go (seed + 1)
  in
  go 0

let raw_fig3_fails decisions =
  match
    fig3_mem_fault_run ~record_trace:false
      ~sched:(Scheduler.replay_decisions ~lenient:true ~fallback:(rr ()) decisions)
  with
  | _, viols -> viols <> []
  | exception _ -> true

let test_raw_fig3_breaks_and_shrinks () =
  match find_failing_seed ~seeds:300 with
  | None ->
    Alcotest.fail "no corrupting storm broke raw fig3 in 300 seeds"
  | Some (seed, res) ->
    let schedule = Trace.schedule res.trace in
    check_bool
      (Printf.sprintf "seed %d reproduces deterministically" seed)
      true (raw_fig3_fails schedule);
    let minimal, _calls = Shrink.minimize ~oracle:raw_fig3_fails schedule in
    check_bool "minimal still fails" true (raw_fig3_fails minimal);
    check_bool "shrunk" true (List.length minimal <= List.length schedule);
    check_bool "witness contains a fault decision" true
      (List.exists
         (function Scheduler.Mem_fault _ -> true | _ -> false)
         minimal);
    (* 1-minimality: dropping any single decision loses the failure *)
    List.iteri
      (fun i _ ->
        let without = List.filteri (fun j _ -> j <> i) minimal in
        check_bool
          (Printf.sprintf "dropping decision %d passes" i)
          false (raw_fig3_fails without))
      minimal

let () =
  Alcotest.run "mem_faults"
    [
      ( "cell-semantics",
        [
          Alcotest.test_case "corrupt flips immediate" `Quick
            test_corrupt_flips_immediate;
          Alcotest.test_case "corrupt garbles block" `Quick
            test_corrupt_garbles_block;
          Alcotest.test_case "lost write drops next write" `Quick
            test_lost_write_drops_next_write;
          Alcotest.test_case "acked-but-lost CAS" `Quick
            test_acked_but_lost_cas;
          Alcotest.test_case "stale read serves history once" `Quick
            test_stale_read_serves_history_once;
          Alcotest.test_case "stale read needs history" `Quick
            test_stale_read_needs_history;
          Alcotest.test_case "stuck cell refuses writes forever" `Quick
            test_stuck_cell_refuses_writes_forever;
          Alcotest.test_case "unknown oid absorbed" `Quick
            test_unknown_oid_absorbed;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "schedule file roundtrip with faults" `Quick
            test_schedule_file_roundtrip_with_faults;
          Alcotest.test_case "trace records and replays faults" `Quick
            test_trace_records_and_replays_faults;
        ] );
      ( "nemeses",
        [
          Alcotest.test_case "corrupt_on_op hits the CAS window" `Quick
            test_corrupt_on_op_hits_cas_window;
          Alcotest.test_case "mem_storm injects and is bounded" `Quick
            test_mem_storm_injects_and_is_bounded;
        ] );
      ( "e15-destructive",
        [
          Alcotest.test_case "raw fig3 breaks under corruption and shrinks"
            `Slow test_raw_fig3_breaks_and_shrinks;
        ] );
    ]
