(* Tests of the simulation kernel: scheduling, step accounting, crash
   injection, determinism, and the Mem_sim primitives. *)

open Psnap
module M = Mem.Sim

(* The whole suite runs with the escape sanitizer on: every simulated access
   must happen at a scheduling point of the current run. *)
let () = M.set_strict true

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ---- step accounting ---- *)

let test_steps_counted () =
  let log = ref [] in
  let procs =
    [|
      (fun () ->
        let r = M.make 0 in
        for _ = 1 to 5 do
          log := M.read r :: !log
        done);
    |]
  in
  let res = Sim.run ~sched:(Scheduler.round_robin ()) procs in
  check_int "five reads = five steps" 5 res.clock;
  check_int "per-pid steps" 5 res.steps.(0)

let test_each_primitive_is_one_step () =
  let procs =
    [|
      (fun () ->
        let r = M.make 0 in
        let c = M.make 7 in
        M.write r 1;
        ignore (M.read r);
        ignore (M.cas r ~expected:1 ~desired:2);
        ignore (M.fetch_and_add c 3));
    |]
  in
  let res = Sim.run ~sched:(Scheduler.round_robin ()) procs in
  check_int "write+read+cas+faa = 4 steps" 4 res.clock

let test_allocation_is_free () =
  let procs = [| (fun () -> ignore (Array.init 100 (fun i -> M.make i))) |] in
  let res = Sim.run ~sched:(Scheduler.round_robin ()) procs in
  check_int "no steps" 0 res.clock

(* ---- scheduling ---- *)

let test_round_robin_alternates () =
  let r = M.make [] in
  let writer pid () =
    for _ = 1 to 3 do
      ignore (M.read r);
      M.write r (pid :: M.read r)
    done
  in
  let res =
    Sim.run ~sched:(Scheduler.round_robin ()) [| writer 0; writer 1 |]
  in
  check_int "total steps" 18 res.clock;
  check_int "p0 steps" 9 res.steps.(0);
  check_int "p1 steps" 9 res.steps.(1)

let trace_signature res =
  List.map
    (function
      | Event.Step { pid; op; clock; _ } -> (pid, op, clock)
      | Event.Crash { pid; clock } -> (pid, Event.Read, -clock)
      | Event.Restart { pid; clock; _ } -> (pid, Event.Write, -clock)
      | Event.Mem_fault { oid; clock; _ } -> (oid, Event.Cas, -clock)
      | Event.Power_loss { clock } -> (-1, Event.Faa, -clock)
      | Event.Net_fault { src; dst; clock; _ } -> (src + dst, Event.Faa, -clock)
      | Event.Reconfig { clock } -> (-2, Event.Faa, -clock))
    res.Sim.trace

let test_random_deterministic () =
  let program () =
    let r = M.make 0 in
    Array.init 3 (fun pid () ->
        for k = 1 to 10 do
          if k mod 2 = 0 then M.write r (pid + k) else ignore (M.read r)
        done)
  in
  let run seed =
    Sim.run ~record_trace:true ~sched:(Scheduler.random ~seed ()) (program ())
  in
  let a = run 42 and b = run 42 in
  check_bool "same trace for same seed" true
    (trace_signature a = trace_signature b);
  let c = run 43 in
  check_bool "different seed, different trace" true
    (trace_signature a <> trace_signature c)

let test_pct_deterministic_and_complete () =
  let program () =
    let r = M.make 0 in
    Array.init 4 (fun pid () ->
        for k = 1 to 20 do
          if (k + pid) mod 3 = 0 then M.write r k else ignore (M.read r)
        done)
  in
  let run seed =
    Sim.run ~record_trace:true
      ~sched:(Scheduler.pct ~seed ~depth:3 ~expected_steps:80 ())
      (program ())
  in
  let a = run 7 and b = run 7 in
  check_bool "pct completes" true (a.outcome = Sim.Completed);
  check_int "all steps executed" 80 a.clock;
  check_bool "same seed, same schedule" true
    (trace_signature a = trace_signature b);
  (* across seeds, schedules differ *)
  let c = run 8 in
  check_bool "different seed, different schedule" true
    (trace_signature a <> trace_signature c)

let test_pct_priorities_starve_low () =
  (* with no change points (depth 1), pct runs one process to completion
     before the next — strict priority order *)
  let order = ref [] in
  let r = M.make 0 in
  let procs =
    Array.init 3 (fun pid () ->
        ignore (M.read r);
        ignore (M.read r);
        order := pid :: !order)
  in
  ignore (Sim.run ~sched:(Scheduler.pct ~seed:1 ~depth:1 ()) procs);
  (* each process's two steps are consecutive: completion order is a
     permutation, with no interleaving *)
  Alcotest.(check int) "all finished" 3 (List.length !order)

let test_replay_forces_order () =
  let order = ref [] in
  let r = M.make 0 in
  let procs =
    Array.init 2 (fun pid () ->
        ignore (M.read r);
        order := pid :: !order)
  in
  let res = Sim.run ~sched:(Scheduler.replay [ 1; 0 ]) procs in
  check_bool "completed" true (res.outcome = Sim.Completed);
  Alcotest.(check (list int)) "p1 then p0" [ 0; 1 ] !order

let test_replay_stops_when_exhausted () =
  let r = M.make 0 in
  let procs =
    Array.init 2 (fun _ () ->
        ignore (M.read r);
        ignore (M.read r))
  in
  let res = Sim.run ~sched:(Scheduler.replay [ 0 ]) procs in
  match res.outcome with
  | Sim.Stopped runnable ->
    Alcotest.(check (list int))
      "both still runnable" [ 0; 1 ] (Array.to_list runnable)
  | Sim.Completed -> Alcotest.fail "expected Stopped"

(* ---- crashes ---- *)

let test_crash_halts_process () =
  let r = M.make 0 in
  let done0 = ref false and done1 = ref false in
  let spin flag () =
    for _ = 1 to 10 do
      ignore (M.read r)
    done;
    flag := true
  in
  let sched =
    Scheduler.with_crash ~pid:0 ~at_clock:3 (Scheduler.round_robin ())
  in
  let res = Sim.run ~sched [| spin done0; spin done1 |] in
  check_bool "victim did not finish" false !done0;
  check_bool "survivor finished" true !done1;
  Alcotest.(check (list int)) "crash recorded" [ 0 ] res.crashed

let test_crash_drops_pending_op () =
  (* The pending write of the crashed process must never take effect. *)
  let witnessed = ref [] in
  let r = M.make 0 in
  let procs =
    [|
      (fun () -> M.write r 1);
      (fun () ->
        for _ = 1 to 3 do
          witnessed := M.read r :: !witnessed
        done);
    |]
  in
  let sched =
    Scheduler.with_crash ~pid:0 ~at_clock:0 (Scheduler.round_robin ())
  in
  ignore (Sim.run ~sched procs);
  Alcotest.(check (list int)) "write never happened" [ 0; 0; 0 ] !witnessed

(* ---- safety ---- *)

let test_out_of_steps () =
  let procs =
    [|
      (fun () ->
        let r = M.make 0 in
        while true do
          ignore (M.read r)
        done);
    |]
  in
  Alcotest.check_raises "spinning process exhausts budget"
    (Sim.Out_of_steps 100) (fun () ->
      ignore (Sim.run ~max_steps:100 ~sched:(Scheduler.round_robin ()) procs))

let test_exception_propagates () =
  let procs = [| (fun () -> failwith "boom") |] in
  Alcotest.check_raises "process failure surfaces" (Failure "boom") (fun () ->
      ignore (Sim.run ~sched:(Scheduler.round_robin ()) procs))

let test_nested_run_rejected () =
  let procs =
    [|
      (fun () ->
        ignore (Sim.run ~sched:(Scheduler.round_robin ()) [| (fun () -> ()) |]));
    |]
  in
  Alcotest.check_raises "nested Sim.run rejected"
    (Failure "Sim.run: nested simulations are not supported") (fun () ->
      ignore (Sim.run ~sched:(Scheduler.round_robin ()) procs))

(* ---- primitive semantics ---- *)

let test_cas_semantics () =
  let outcomes = ref [] in
  let procs =
    [|
      (fun () ->
        let r = M.make `A in
        let a = M.read r in
        let first = M.cas r ~expected:a ~desired:`B in
        let second = M.cas r ~expected:a ~desired:`C in
        outcomes := [ first; second ]);
    |]
  in
  ignore (Sim.run ~sched:(Scheduler.round_robin ()) procs);
  Alcotest.(check (list bool)) "second cas fails" [ true; false ] !outcomes

let test_faa_unique () =
  let c = M.make 0 in
  let got = Array.make 4 (-1) in
  let procs = Array.init 4 (fun pid () -> got.(pid) <- M.fetch_and_add c 1) in
  ignore (Sim.run ~sched:(Scheduler.random ~seed:5 ()) procs);
  let sorted = Array.copy got in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "all slots distinct" [| 0; 1; 2; 3 |] sorted

(* ---- trace analysis ---- *)

let test_trace_analysis () =
  let r = M.make 0 in
  let procs =
    [|
      (fun () ->
        for _ = 1 to 4 do
          ignore (M.read r)
        done);
      (fun () ->
        for _ = 1 to 4 do
          M.write r 1
        done);
    |]
  in
  let res =
    Sim.run ~record_trace:true ~sched:(Scheduler.round_robin ()) procs
  in
  let module T = Psnap_sched.Trace in
  Alcotest.(check (list (pair int int)))
    "steps by pid" [ (0, 4); (1, 4) ]
    (T.steps_by_pid res.trace);
  (match T.steps_by_object res.trace with
  | [ (_, name, n) ] ->
    Alcotest.(check string) "single object" "r" name;
    check_int "all accesses on it" 8 n
  | _ -> Alcotest.fail "one object expected");
  check_int "round robin alternates" 7 (T.context_switches res.trace);
  Alcotest.(check (list int)) "no crashes" [] (T.crashes res.trace)

let test_trace_context_switches_solo () =
  let r = M.make 0 in
  let res =
    Sim.run ~record_trace:true
      ~sched:(Scheduler.round_robin ())
      [| (fun () -> ignore (M.read r); ignore (M.read r)) |]
  in
  check_int "solo run: no switches" 0
    (Psnap_sched.Trace.context_switches res.trace)

let test_trace_records_crash () =
  let r = M.make 0 in
  let procs = Array.make 2 (fun () -> ignore (M.read r); ignore (M.read r)) in
  let sched =
    Scheduler.with_crash ~pid:1 ~at_clock:1 (Scheduler.round_robin ())
  in
  let res = Sim.run ~record_trace:true ~sched procs in
  Alcotest.(check (list int)) "crash in trace" [ 1 ]
    (Psnap_sched.Trace.crashes res.trace)

(* ---- escape sanitizer (strict mode) ---- *)

let test_escape_outside_run () =
  (* A cell may be built outside a run, but accessing it outside any run is
     an escape: the access takes no simulator step. *)
  let r = M.make 0 in
  match M.read r with
  | _ -> Alcotest.fail "expected Escape"
  | exception M.Escape _ -> ()

let test_escape_cross_run () =
  (* A cell born inside one run must not leak into a later run. *)
  let leaked = ref None in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           let r = M.make 0 in
           M.write r 1;
           leaked := Some r);
       |]);
  let r = Option.get !leaked in
  let escaped = ref false in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           match M.read r with
           | _ -> ()
           | exception M.Escape _ -> escaped := true);
       |]);
  check_bool "stale cell rejected" true !escaped

let test_outside_born_cells_allowed () =
  (* The common pattern: allocate in test setup, use inside several runs. *)
  let r = M.make 0 in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ()) [| (fun () -> M.write r 1) |]);
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [| (fun () -> check_int "value persists" 1 (M.read r)) |])

let test_sanitizer_metrics () =
  Metrics.reset_sanitizer ();
  let r = M.make 0 in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           ignore (M.read r);
           M.write r 2);
       |]);
  let s = Metrics.sanitizer () in
  check_bool "strict on" true s.Metrics.strict;
  check_int "two accesses checked" 2 s.Metrics.checked;
  check_int "no escapes" 0 s.Metrics.escaped;
  (match M.read r with
  | _ -> Alcotest.fail "expected Escape"
  | exception M.Escape _ -> ());
  let s = Metrics.sanitizer () in
  check_int "escape counted" 1 s.Metrics.escaped

(* ---- metrics ---- *)

let test_metrics_steps () =
  let rec_ = Metrics.create () in
  let r = M.make 0 in
  let procs =
    [|
      (fun () ->
        Metrics.measure rec_ ~pid:0 ~kind:"op3" (fun () ->
            ignore (M.read r);
            ignore (M.read r);
            M.write r 1);
        Metrics.measure rec_ ~pid:0 ~kind:"op1" (fun () -> ignore (M.read r)));
    |]
  in
  ignore (Sim.run ~sched:(Scheduler.round_robin ()) procs);
  check_int "op3 steps" 3 (Metrics.total_steps (Metrics.by_kind rec_ "op3"));
  check_int "op1 steps" 1 (Metrics.total_steps (Metrics.by_kind rec_ "op1"))

let test_metrics_contention () =
  let rec_ = Metrics.create () in
  let r = M.make 0 in
  let busy pid n () =
    Metrics.measure rec_ ~pid ~kind:"op" (fun () ->
        for _ = 1 to n do
          ignore (M.read r)
        done)
  in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [| busy 0 5; busy 1 5; busy 2 5 |]);
  let all = Metrics.samples rec_ in
  check_int "interval contention" 3 (Metrics.max_interval_contention all);
  check_int "point contention" 3 (Metrics.max_point_contention all)

let test_metrics_sequential_no_overlap () =
  let rec_ = Metrics.create () in
  let r = M.make 0 in
  let procs =
    [|
      (fun () ->
        Metrics.measure rec_ ~pid:0 ~kind:"a" (fun () -> ignore (M.read r));
        Metrics.measure rec_ ~pid:0 ~kind:"b" (fun () -> ignore (M.read r)));
    |]
  in
  ignore (Sim.run ~sched:(Scheduler.round_robin ()) procs);
  check_int "sequential ops do not overlap" 1
    (Metrics.max_interval_contention (Metrics.samples rec_))

let () =
  Alcotest.run "sim"
    [
      ( "steps",
        [
          Alcotest.test_case "steps counted" `Quick test_steps_counted;
          Alcotest.test_case "each primitive one step" `Quick
            test_each_primitive_is_one_step;
          Alcotest.test_case "allocation free" `Quick test_allocation_is_free;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "round robin" `Quick test_round_robin_alternates;
          Alcotest.test_case "random deterministic" `Quick
            test_random_deterministic;
          Alcotest.test_case "pct deterministic" `Quick
            test_pct_deterministic_and_complete;
          Alcotest.test_case "pct depth 1" `Quick test_pct_priorities_starve_low;
          Alcotest.test_case "replay forces order" `Quick
            test_replay_forces_order;
          Alcotest.test_case "replay stops" `Quick
            test_replay_stops_when_exhausted;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "crash halts" `Quick test_crash_halts_process;
          Alcotest.test_case "crash drops pending op" `Quick
            test_crash_drops_pending_op;
        ] );
      ( "safety",
        [
          Alcotest.test_case "out of steps" `Quick test_out_of_steps;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested run rejected" `Quick
            test_nested_run_rejected;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "cas" `Quick test_cas_semantics;
          Alcotest.test_case "faa unique" `Quick test_faa_unique;
        ] );
      ( "trace",
        [
          Alcotest.test_case "analysis" `Quick test_trace_analysis;
          Alcotest.test_case "solo switches" `Quick
            test_trace_context_switches_solo;
          Alcotest.test_case "crash recorded" `Quick test_trace_records_crash;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "escape outside run" `Quick
            test_escape_outside_run;
          Alcotest.test_case "escape across runs" `Quick test_escape_cross_run;
          Alcotest.test_case "outside-born cells allowed" `Quick
            test_outside_born_cells_allowed;
          Alcotest.test_case "sanitizer counters" `Quick test_sanitizer_metrics;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "steps per op" `Quick test_metrics_steps;
          Alcotest.test_case "contention" `Quick test_metrics_contention;
          Alcotest.test_case "no overlap" `Quick
            test_metrics_sequential_no_overlap;
        ] );
    ]
