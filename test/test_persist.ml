(* Tests of the durability layer (lib/persist): WAL framing edge cases
   (empty log, torn tail, checksum corruption mid-log, checkpoint-begin
   without end, duplicate-lsn dedup, double-recovery idempotence), the
   checkpoint triple, and the durable snapshot under simulated power
   losses — a mini exhaustive sweep (a blackout at every schedule point
   must recover to a durably-linearizable state), plain crash–restart
   intent resumption, checkpointed recovery, and the committed E18
   witness schedule, which must drive the deliberately unsound late-log
   mode to a committed-then-lost violation while leaving the sound
   write-ahead mode clean. *)

open Psnap
module Wal = Persist.Wal
module Recovery = Persist.Recovery
module St = Persist.Storage.Sim
module WIO = Persist.Wal.Make (Persist.Storage.Sim)
module R = Persist.Recovery.Make (Persist.Storage.Sim)
module C = Persist.Checkpoint.Make (Persist.Storage.Sim)
module D = Sim_durable_fig3
module M = Psnap_sched.Mem_sim

let () = M.set_strict true

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let pay (v : int) = Marshal.to_string v []

let upd ~lsn ~index v = Wal.Update { lsn; pid = 0; index; payload = pay v }

let ints_of (st : int Recovery.state) = st.Recovery.values

(* ---- WAL framing ---- *)

let test_roundtrip () =
  let records =
    [
      upd ~lsn:1 ~index:0 42;
      Wal.Checkpoint_begin { gen = 1; next_lsn = 2 };
      Wal.Scan_seal { gen = 1; payload = Marshal.to_string [| 42; -2 |] [] };
      Wal.Checkpoint_end { gen = 1 };
      upd ~lsn:2 ~index:1 7;
    ]
  in
  let log = String.concat "" (List.map Wal.encode records) in
  let d = Wal.decode_all log in
  check_bool "clean" true (d.Wal.damage = Wal.Clean);
  check_int "all records decode" (List.length records)
    (List.length d.Wal.records);
  check_int "good_bytes = full log" (String.length log) d.Wal.good_bytes

let test_empty_log () =
  let d = Wal.decode_all "" in
  check_bool "clean" true (d.Wal.damage = Wal.Clean);
  check_int "no records" 0 (List.length d.Wal.records);
  check_int "no bytes" 0 d.Wal.good_bytes;
  St.reset ();
  let dev = St.create ~name:"t" in
  let st, damage = R.load dev ~init:[| -1; -2 |] in
  check_bool "fresh device is clean" true (damage = Wal.Clean);
  check_bool "recovers to init" true (ints_of st = [| -1; -2 |]);
  check_int "first lsn" 1 st.Recovery.next_lsn;
  check_int "nothing replayed" 0 st.Recovery.replayed;
  check_int "no checkpoint" 0 st.Recovery.checkpoint_gen

let test_torn_tail () =
  St.reset ();
  let dev = St.create ~name:"t" in
  WIO.append dev (upd ~lsn:1 ~index:0 10);
  WIO.append dev (upd ~lsn:2 ~index:1 20);
  St.sync dev;
  (* a power loss mid-append leaves a prefix of the next frame *)
  let torn = Wal.encode (upd ~lsn:3 ~index:0 30) in
  St.append dev (String.sub torn 0 (String.length torn - 5));
  let d = WIO.read_all ~repair:true dev in
  check_bool "torn" true (d.Wal.damage = Wal.Torn);
  check_int "valid prefix survives" 2 (List.length d.Wal.records);
  check_int "repair truncated the device" d.Wal.good_bytes (St.size dev);
  let d2 = WIO.read_all dev in
  check_bool "clean after repair" true (d2.Wal.damage = Wal.Clean);
  check_int "same records" 2 (List.length d2.Wal.records)

let test_corrupt_mid_log () =
  let r1 = Wal.encode (upd ~lsn:1 ~index:0 10) in
  let r2 = Wal.encode (upd ~lsn:2 ~index:1 20) in
  let r3 = Wal.encode (upd ~lsn:3 ~index:0 30) in
  let log = Bytes.of_string (r1 ^ r2 ^ r3) in
  (* flip a byte inside r2's body (past its header) *)
  let off = String.length r1 + Wal.header_len + 2 in
  Bytes.set log off (Char.chr (Char.code (Bytes.get log off) lxor 0xFF));
  let d = Wal.decode_all (Bytes.to_string log) in
  check_bool "corrupt, not torn" true (d.Wal.damage = Wal.Corrupt);
  check_int "decoding stops before the damaged frame" 1
    (List.length d.Wal.records);
  check_int "good_bytes = r1" (String.length r1) d.Wal.good_bytes

let test_begin_without_end () =
  let records =
    [
      upd ~lsn:1 ~index:0 10;
      Wal.Checkpoint_begin { gen = 1; next_lsn = 2 };
      Wal.Scan_seal { gen = 1; payload = Marshal.to_string [| 10; -2 |] [] };
      (* no Checkpoint_end: the triple is invisible to recovery *)
      upd ~lsn:2 ~index:1 20;
    ]
  in
  let st = Recovery.replay ~init:[| -1; -2 |] records in
  check_bool "falls back to init + full replay" true
    (ints_of st = [| 10; 20 |]);
  check_int "no checkpoint trusted" 0 st.Recovery.checkpoint_gen;
  check_int "both updates replayed" 2 st.Recovery.replayed;
  check_int "lsn horizon past everything" 3 st.Recovery.next_lsn

let test_duplicate_lsn_dedup () =
  (* owner recovery may conservatively re-append an lsn that survived *)
  let records =
    [ upd ~lsn:1 ~index:0 10; upd ~lsn:1 ~index:0 10; upd ~lsn:2 ~index:1 20 ]
  in
  let st = Recovery.replay ~init:[| -1; -2 |] records in
  check_bool "values" true (ints_of st = [| 10; 20 |]);
  check_int "duplicate applied once" 2 st.Recovery.replayed;
  check_int "next lsn" 3 st.Recovery.next_lsn

let test_checkpoint_roundtrip () =
  St.reset ();
  let dev = St.create ~name:"t" in
  WIO.append dev (upd ~lsn:1 ~index:0 10);
  St.sync dev;
  C.write dev ~gen:1 ~next_lsn:2 ~payload:(Marshal.to_string [| 10; -2 |] []);
  WIO.append dev (upd ~lsn:2 ~index:1 20);
  St.sync dev;
  let st, damage = R.load dev ~init:[| -1; -2 |] in
  check_bool "clean" true (damage = Wal.Clean);
  check_bool "checkpoint + suffix" true (ints_of st = [| 10; 20 |]);
  check_int "recovered generation" 1 st.Recovery.checkpoint_gen;
  check_int "only the suffix replayed" 1 st.Recovery.replayed;
  check_int "next lsn" 3 st.Recovery.next_lsn

let test_double_recovery_idempotent () =
  St.reset ();
  let dev = St.create ~name:"t" in
  WIO.append dev (upd ~lsn:1 ~index:0 10);
  WIO.append dev (upd ~lsn:2 ~index:1 20);
  St.sync dev;
  let torn = Wal.encode (upd ~lsn:3 ~index:0 30) in
  St.append dev (String.sub torn 0 (String.length torn - 3));
  let st1, d1 = R.load dev ~init:[| -1; -2 |] in
  let st2, d2 = R.load dev ~init:[| -1; -2 |] in
  check_bool "first pass repairs" true (d1 = Wal.Torn);
  check_bool "second pass reads a clean log" true (d2 = Wal.Clean);
  check_bool "same values" true (ints_of st1 = ints_of st2);
  check_int "same next lsn" st1.Recovery.next_lsn st2.Recovery.next_lsn;
  check_int "same replay count" st1.Recovery.replayed st2.Recovery.replayed

let test_has_lsn () =
  St.reset ();
  let dev = St.create ~name:"t" in
  WIO.append dev (upd ~lsn:1 ~index:0 10);
  WIO.append dev (upd ~lsn:3 ~index:1 20);
  check_bool "present" true (WIO.has_lsn dev 1);
  check_bool "present" true (WIO.has_lsn dev 3);
  check_bool "absent" false (WIO.has_lsn dev 2)

(* ---- the durable snapshot under the simulator ----

   The workload mirrors bin/simulate.ml's run_durable exactly (same index
   and value formulas, same recovery bodies): the committed E18 witness
   schedule was shrunk against that program, and replay is only
   meaningful against the same program. *)

let m = 4

let updaters = 1

let updates = 3

let scanners = 2

let scans = 6

let init = Array.init m (fun i -> -(i + 1))

let run_workload ?(config = D.default_config) ~sched () =
  let n = updaters + scanners in
  let hist = History.create ~now:Sim.mark () in
  Sim.reset_prerun_oids ();
  St.reset ();
  let cur = ref (D.create_with ~config ~n (Array.copy init)) in
  let seen_losses = ref 0 in
  let rebuild_if_power_lost () =
    let dev = D.storage !cur in
    let l = St.losses dev in
    if l > !seen_losses then begin
      seen_losses := l;
      cur := D.recover ~config dev ~n init
    end
  in
  let updater ~incarnation pid () =
    if incarnation > 1 then rebuild_if_power_lost ();
    let h = D.handle !cur ~pid in
    if incarnation > 1 then D.resume h;
    for k = 1 to updates do
      let i = (k + (pid * 7)) mod m in
      let v = (pid * 1_000_000) + (incarnation * 10_000) + k in
      ignore
        (History.record hist ~pid (Snapshot_spec.Update (i, v)) (fun () ->
             D.update h i v;
             Snapshot_spec.Ack))
    done
  in
  let scanner ~incarnation pid () =
    if incarnation > 1 then rebuild_if_power_lost ();
    let h = D.handle !cur ~pid in
    let idxs = Array.init m (fun i -> i) in
    for _ = 1 to scans do
      ignore
        (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
             Snapshot_spec.Vals (D.scan h idxs)))
    done
  in
  let body ~incarnation pid =
    if pid < updaters then updater ~incarnation pid
    else scanner ~incarnation pid
  in
  let procs = Array.init n (fun pid -> body ~incarnation:1 pid) in
  let recover = Some (fun ~pid ~incarnation -> body ~incarnation pid) in
  let res = Sim.run ?recover ~sched procs in
  (res, Snapshot_spec.check_observations ~init (History.entries hist))

let test_mini_power_loss_sweep () =
  Psnap_sched.Metrics.reset_durable ();
  let base seed = Scheduler.random ~seed () in
  (* one clean baseline to learn the schedule length, then a blackout at
     every schedule point — the simulate campaign's sweep in miniature *)
  let res0, viols0 = run_workload ~sched:(base 7) () in
  check_bool "baseline linearizable" true (viols0 = []);
  for c = 1 to res0.Sim.clock - 1 do
    let sched = Scheduler.power_loss_at ~at_clock:c (base 7) in
    let _, viols = run_workload ~sched () in
    if viols <> [] then
      Alcotest.failf "power loss at clock %d: %d violations" c
        (List.length viols)
  done;
  let dm = Psnap_sched.Metrics.durable () in
  check_bool "blackouts fired" true (dm.Psnap_sched.Metrics.power_losses > 0);
  check_bool "recoveries ran" true (dm.Psnap_sched.Metrics.recoveries > 0)

let test_storm_with_checkpoints () =
  Psnap_sched.Metrics.reset_durable ();
  let config = { D.default_config with D.checkpoint_every = 2 } in
  for seed = 0 to 19 do
    let sched =
      Scheduler.power_storm ~seed ~rate:0.02 (Scheduler.random ~seed ())
    in
    let _, viols = run_workload ~config ~sched () in
    if viols <> [] then
      Alcotest.failf "seed %d: %d violations" seed (List.length viols)
  done;
  let dm = Psnap_sched.Metrics.durable () in
  check_bool "checkpoints sealed" true
    (dm.Psnap_sched.Metrics.checkpoints > 0);
  check_bool "recoveries ran" true (dm.Psnap_sched.Metrics.recoveries > 0)

let test_plain_crash_resumes_intent () =
  (* a crash–restart without any power loss: the object survives in
     memory, so recovery must resume the published intent, never rebuild *)
  Psnap_sched.Metrics.reset_durable ();
  for seed = 0 to 19 do
    let sched = Scheduler.crash_storm ~seed (Scheduler.random ~seed ()) in
    let _, viols = run_workload ~sched () in
    if viols <> [] then
      Alcotest.failf "seed %d: %d violations" seed (List.length viols)
  done;
  let dm = Psnap_sched.Metrics.durable () in
  check_int "no blackout, no rebuild" 0 dm.Psnap_sched.Metrics.recoveries

(* ---- E18: the committed ddmin-shrunk witness ---- *)

(* `dune runtest` runs from the test directory inside _build (where the
   dune deps clause stages the schedule one level up); `dune exec` runs
   from the workspace root. *)
let e18_witness =
  if Sys.file_exists "schedules/e18-durable-latelog.sched" then
    "schedules/e18-durable-latelog.sched"
  else "../schedules/e18-durable-latelog.sched"

let replay_witness ~config =
  let decisions = Shrink.load e18_witness in
  check_bool "witness committed and shrunk" true
    (decisions <> [] && List.length decisions <= 80);
  let sched =
    Scheduler.replay_decisions ~lenient:true
      ~fallback:(Scheduler.round_robin ()) decisions
  in
  snd (run_workload ~config ~sched ())

let test_e18_witness_kills_late_log () =
  let viols =
    replay_witness ~config:{ D.default_config with D.write_ahead = false }
  in
  check_bool "late-log mode loses an observed value" true (viols <> [])

let test_e18_witness_clean_on_write_ahead () =
  let viols = replay_witness ~config:D.default_config in
  check_bool "write-ahead mode survives the same blackout" true (viols = [])

let () =
  Alcotest.run "persist"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "empty log" `Quick test_empty_log;
          Alcotest.test_case "torn tail" `Quick test_torn_tail;
          Alcotest.test_case "corrupt mid-log" `Quick test_corrupt_mid_log;
          Alcotest.test_case "has_lsn" `Quick test_has_lsn;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "begin without end" `Quick
            test_begin_without_end;
          Alcotest.test_case "duplicate lsn dedup" `Quick
            test_duplicate_lsn_dedup;
          Alcotest.test_case "checkpoint roundtrip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "double recovery idempotent" `Quick
            test_double_recovery_idempotent;
        ] );
      ( "power-loss",
        [
          Alcotest.test_case "mini sweep: blackout at every point" `Quick
            test_mini_power_loss_sweep;
          Alcotest.test_case "storm with checkpoints (20 seeds)" `Quick
            test_storm_with_checkpoints;
          Alcotest.test_case "plain crash resumes intent (20 seeds)" `Quick
            test_plain_crash_resumes_intent;
          Alcotest.test_case "e18 witness kills late-log" `Quick
            test_e18_witness_kills_late_log;
          Alcotest.test_case "e18 witness clean on write-ahead" `Quick
            test_e18_witness_clean_on_write_ahead;
        ] );
    ]
