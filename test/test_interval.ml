(* Unit and property tests for the interval-set substrate used by the
   Figure 2 active set's CAS object. *)

module I = Psnap.Interval_set
module IntSet = Set.Make (Int)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* ---- unit tests ---- *)

let test_empty () =
  check "empty has no members" false (I.mem 0 I.empty);
  check "empty is empty" true (I.is_empty I.empty);
  check_int "empty cardinal" 0 (I.cardinal I.empty)

let test_add_basic () =
  let s = I.add 5 I.empty in
  check "5 in" true (I.mem 5 s);
  check "4 out" false (I.mem 4 s);
  check "6 out" false (I.mem 6 s);
  check_int "one interval" 1 (I.interval_count s)

let test_coalesce_adjacent () =
  let s = I.empty |> I.add 1 |> I.add 3 |> I.add 2 in
  check_int "coalesced to one interval" 1 (I.interval_count s);
  Alcotest.(check (list (pair int int))) "intervals" [ (1, 3) ] (I.intervals s)

let test_coalesce_left_right () =
  let s = I.empty |> I.add 10 |> I.add 12 |> I.add 14 in
  check_int "three intervals" 3 (I.interval_count s);
  let s = I.add 13 s in
  check_int "right pair merged" 2 (I.interval_count s);
  let s = I.add 11 s in
  check_int "all merged" 1 (I.interval_count s);
  Alcotest.(check (list (pair int int))) "intervals" [ (10, 14) ] (I.intervals s)

let test_add_existing () =
  let s = I.empty |> I.add 7 |> I.add 7 in
  check_int "idempotent" 1 (I.cardinal s)

let test_add_range () =
  let s = I.add_range ~lo:3 ~hi:9 I.empty in
  check_int "cardinal" 7 (I.cardinal s);
  check "3 in" true (I.mem 3 s);
  check "9 in" true (I.mem 9 s);
  check "10 out" false (I.mem 10 s);
  Alcotest.check_raises "lo > hi rejected"
    (Invalid_argument "Interval_set.add_range: lo > hi") (fun () ->
      ignore (I.add_range ~lo:2 ~hi:1 I.empty))

let test_range_bridges () =
  let s = I.empty |> I.add 1 |> I.add 10 in
  let s = I.add_range ~lo:3 ~hi:8 s in
  check_int "three intervals" 3 (I.interval_count s);
  let s = I.add_range ~lo:2 ~hi:9 s in
  check_int "bridged" 1 (I.interval_count s);
  Alcotest.(check (list (pair int int))) "intervals" [ (1, 10) ] (I.intervals s)

let test_union () =
  let a = I.of_intervals [ (0, 3); (10, 12) ] in
  let b = I.of_intervals [ (4, 5); (11, 20) ] in
  let u = I.union a b in
  check "canonical" true (I.invariant_ok u);
  Alcotest.(check (list (pair int int)))
    "intervals"
    [ (0, 5); (10, 20) ]
    (I.intervals u)

let test_fold_gaps () =
  let s = I.of_intervals [ (2, 3); (6, 6) ] in
  let gaps = I.fold_gaps ~lo:0 ~hi:8 (fun acc i -> i :: acc) [] s in
  Alcotest.(check (list int)) "gaps" [ 8; 7; 5; 4; 1; 0 ] gaps;
  let none = I.fold_gaps ~lo:2 ~hi:3 (fun acc i -> i :: acc) [] s in
  Alcotest.(check (list int)) "fully covered" [] none

let test_equal () =
  let a = I.empty |> I.add 1 |> I.add 2 in
  let b = I.add_range ~lo:1 ~hi:2 I.empty in
  check "canonical equality" true (I.equal a b)

(* ---- property tests against a reference Set.Make(Int) model ---- *)

let range_gen = QCheck2.Gen.int_bound 60

type op = Add of int | Add_range of int * int

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Add i) range_gen;
        map2
          (fun lo len -> Add_range (lo, lo + len))
          range_gen (int_bound 10);
      ])

let ops_gen = QCheck2.Gen.(list_size (int_bound 40) op_gen)

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Add i -> Printf.sprintf "add %d" i
         | Add_range (lo, hi) -> Printf.sprintf "range %d-%d" lo hi)
       ops)

let build ops =
  List.fold_left
    (fun (s, m) -> function
      | Add i -> (I.add i s, IntSet.add i m)
      | Add_range (lo, hi) ->
        ( I.add_range ~lo ~hi s,
          List.fold_left (fun m i -> IntSet.add i m) m
            (List.init (hi - lo + 1) (fun k -> lo + k)) ))
    (I.empty, IntSet.empty) ops

let prop_model =
  QCheck2.Test.make ~name:"interval set agrees with Set.Make(Int)" ~count:500
    ~print:print_ops ops_gen (fun ops ->
      let s, m = build ops in
      I.invariant_ok s
      && I.cardinal s = IntSet.cardinal m
      && List.for_all (fun i -> I.mem i s = IntSet.mem i m)
           (List.init 75 (fun i -> i - 1)))

let prop_union =
  QCheck2.Test.make ~name:"union agrees with model union" ~count:300
    ~print:(fun (a, b) -> print_ops a ^ " | " ^ print_ops b)
    QCheck2.Gen.(pair ops_gen ops_gen)
    (fun (opsa, opsb) ->
      let sa, ma = build opsa and sb, mb = build opsb in
      let u = I.union sa sb and mu = IntSet.union ma mb in
      I.invariant_ok u
      && I.cardinal u = IntSet.cardinal mu
      && List.for_all (fun i -> I.mem i u = IntSet.mem i mu)
           (List.init 75 (fun i -> i - 1)))

let prop_gaps =
  QCheck2.Test.make ~name:"fold_gaps enumerates the complement" ~count:300
    ~print:print_ops ops_gen (fun ops ->
      let s, m = build ops in
      let gaps = I.fold_gaps ~lo:0 ~hi:70 (fun acc i -> i :: acc) [] s in
      let expected =
        List.filter (fun i -> not (IntSet.mem i m)) (List.init 71 (fun i -> i))
      in
      List.rev gaps = expected)

let prop_canonical =
  QCheck2.Test.make ~name:"same set implies same representation" ~count:300
    ~print:(fun (a, b) -> print_ops a ^ " | " ^ print_ops b)
    QCheck2.Gen.(pair ops_gen ops_gen)
    (fun (opsa, opsb) ->
      let sa, ma = build opsa and sb, mb = build opsb in
      if IntSet.equal ma mb then I.equal sa sb else true)

let () =
  Alcotest.run "interval_set"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add basic" `Quick test_add_basic;
          Alcotest.test_case "coalesce adjacent" `Quick test_coalesce_adjacent;
          Alcotest.test_case "coalesce left/right" `Quick test_coalesce_left_right;
          Alcotest.test_case "add existing" `Quick test_add_existing;
          Alcotest.test_case "add_range" `Quick test_add_range;
          Alcotest.test_case "range bridges" `Quick test_range_bridges;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "fold_gaps" `Quick test_fold_gaps;
          Alcotest.test_case "canonical equality" `Quick test_equal;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_model; prop_union; prop_gaps; prop_canonical ] );
    ]
