(* Property tests for views and their two register representations
   (wholesale vs the small-registers variant of the paper's remarks). *)

open Psnap
module View = Snapshot.View
module Direct = Snapshot.View_repr.Direct
module Indirect = Snapshot.View_repr.Indirect (Psnap.Mem.Sim)

let check_int = Alcotest.(check int)

let in_sim f =
  let out = ref None in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [| (fun () -> out := Some (f ())) |]);
  Option.get !out

(* ---- View unit tests ---- *)

let test_view_basics () =
  let v = View.of_pairs [ (5, "e"); (1, "a"); (9, "i") ] in
  check_int "size" 3 (View.size v);
  Alcotest.(check (option string)) "find hit" (Some "e") (View.find v 5);
  Alcotest.(check (option string)) "find miss" None (View.find v 4);
  Alcotest.(check bool) "mem" true (View.mem v 1);
  Alcotest.(check string) "find_exn" "i" (View.find_exn v 9);
  Alcotest.(check (list (pair int string)))
    "sorted pairs"
    [ (1, "a"); (5, "e"); (9, "i") ]
    (View.to_pairs v);
  Alcotest.(check bool) "duplicate rejected" true
    (match View.of_pairs [ (1, "x"); (1, "y") ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_view_empty () =
  check_int "empty size" 0 (View.size View.empty);
  Alcotest.(check (option int)) "empty find" None (View.find View.empty 0)

(* ---- qcheck: find agrees with assoc on random pair sets ---- *)

let pairs_gen =
  QCheck2.Gen.(
    map
      (fun l ->
        (* dedupe indices *)
        let seen = Hashtbl.create 8 in
        List.filter
          (fun (i, _) ->
            if Hashtbl.mem seen i then false
            else begin
              Hashtbl.add seen i ();
              true
            end)
          l)
      (list_size (int_bound 30) (pair (int_bound 100) (int_bound 1000))))

let prop_find_agrees_with_assoc =
  QCheck2.Test.make ~name:"View.find = List.assoc" ~count:300 pairs_gen
    (fun pairs ->
      let v = View.of_pairs pairs in
      List.for_all
        (fun i -> View.find v i = List.assoc_opt i pairs)
        (List.init 102 (fun i -> i)))

let prop_direct_indirect_agree =
  QCheck2.Test.make ~name:"Direct and Indirect representations agree"
    ~count:200 pairs_gen (fun pairs ->
      let sorted = List.sort compare pairs in
      let idxs = Array.of_list (List.map fst sorted) in
      let vals = Array.of_list (List.map snd sorted) in
      in_sim (fun () ->
          let d = Direct.publish ~idxs ~vals in
          let ind = Indirect.publish ~idxs ~vals in
          Direct.size d = Indirect.size ind
          && List.for_all
               (fun i ->
                 let a =
                   match Direct.find_exn d i with
                   | x -> Some x
                   | exception Invalid_argument _ -> None
                 in
                 let b =
                   match Indirect.find_exn ind i with
                   | x -> Some x
                   | exception Invalid_argument _ -> None
                 in
                 a = b)
               (List.init 102 (fun i -> i))))

(* ---- step costs of the two representations ---- *)

let test_publish_costs () =
  let idxs = Array.init 10 (fun i -> i * 3) in
  let vals = Array.init 10 (fun i -> i) in
  let direct_cost =
    in_sim (fun () ->
        let s0 = Sim.steps_of 0 in
        ignore (Direct.publish ~idxs ~vals);
        Sim.steps_of 0 - s0)
  in
  let indirect_cost =
    in_sim (fun () ->
        let s0 = Sim.steps_of 0 in
        ignore (Indirect.publish ~idxs ~vals);
        Sim.steps_of 0 - s0)
  in
  check_int "direct publish is free" 0 direct_cost;
  check_int "indirect publish writes one register per pair" 10 indirect_cost

let test_find_costs () =
  let n = 64 in
  let idxs = Array.init n (fun i -> i * 2) in
  let vals = Array.init n (fun i -> i) in
  let direct_cost =
    in_sim (fun () ->
        let d = Direct.publish ~idxs ~vals in
        let s0 = Sim.steps_of 0 in
        ignore (Direct.find_exn d 62);
        Sim.steps_of 0 - s0)
  in
  let indirect_cost =
    in_sim (fun () ->
        let ind = Indirect.publish ~idxs ~vals in
        let s0 = Sim.steps_of 0 in
        ignore (Indirect.find_exn ind 62);
        Sim.steps_of 0 - s0)
  in
  check_int "direct lookup is free" 0 direct_cost;
  Alcotest.(check bool)
    (Printf.sprintf "indirect lookup is <= log2 n + 1 reads (%d)" indirect_cost)
    true
    (indirect_cost >= 1 && indirect_cost <= 7)

let () =
  Alcotest.run "view"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_view_basics;
          Alcotest.test_case "empty" `Quick test_view_empty;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_find_agrees_with_assoc; prop_direct_indirect_agree ] );
      ( "costs",
        [
          Alcotest.test_case "publish" `Quick test_publish_costs;
          Alcotest.test_case "find" `Quick test_find_costs;
        ] );
    ]
