(* Tests of the three snapshot implementations: sequential semantics,
   linearizability under many random/adversarial schedules (exact checker on
   small histories, observation checker on large ones), crash tolerance, and
   a sensitivity check proving the pipeline catches broken algorithms. *)

open Psnap

let check_bool = Alcotest.(check bool)

module type SNAP = Snapshot.S

let impls : (string * (module SNAP)) list =
  [
    ("afek-full", (module Sim_afek));
    ("fig1-reg", (module Sim_fig1));
    ("fig3-cas", (module Sim_fig3));
    ("fig3-cas/bounded-aset", (module Sim_fig3_bounded_aset));
    ("fig1-small-regs", (module Sim_fig1_small));
    ("fig3-small-regs", (module Sim_fig3_small));
    ("farray", (module Sim_farray));
    ("nonblocking", (module Sim_nonblocking));
    ("fig1-adaptive", (module Sim_fig1_adaptive));
  ]

let in_sim ?sched f =
  let sched = Option.value sched ~default:(Scheduler.round_robin ()) in
  let out = ref None in
  ignore (Sim.run ~sched [| (fun () -> out := Some (f ())) |]);
  Option.get !out

(* ---- sequential semantics ---- *)

let test_sequential (module S : SNAP) () =
  in_sim (fun () ->
      let t = S.create ~n:1 [| 10; 20; 30; 40 |] in
      let h = S.handle t ~pid:0 in
      Alcotest.(check (array int))
        "initial values" [| 10; 20; 30; 40 |]
        (S.scan h [| 0; 1; 2; 3 |]);
      S.update h 2 99;
      Alcotest.(check (array int)) "update visible" [| 99 |] (S.scan h [| 2 |]);
      Alcotest.(check (array int))
        "others untouched" [| 10; 20; 40 |]
        (S.scan h [| 0; 1; 3 |]);
      S.update h 2 100;
      S.update h 0 (-1);
      Alcotest.(check (array int))
        "latest wins" [| -1; 100 |]
        (S.scan h [| 0; 2 |]))

let test_scan_argument_shapes (module S : SNAP) () =
  in_sim (fun () ->
      let t = S.create ~n:1 [| 1; 2; 3 |] in
      let h = S.handle t ~pid:0 in
      Alcotest.(check (array int)) "empty scan" [||] (S.scan h [||]);
      Alcotest.(check (array int))
        "unsorted args" [| 3; 1 |]
        (S.scan h [| 2; 0 |]);
      Alcotest.(check (array int))
        "duplicate args" [| 2; 2; 1 |]
        (S.scan h [| 1; 1; 0 |]);
      Alcotest.(check (array int)) "singleton" [| 2 |] (S.scan h [| 1 |]))

let test_sequential_model (module S : SNAP) () =
  (* Random single-process op sequences against the vector model. *)
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 25 do
    in_sim (fun () ->
        let m = 1 + Random.State.int st 6 in
        let model = Array.init m (fun i -> -(i + 1)) in
        let t = S.create ~n:1 (Array.copy model) in
        let h = S.handle t ~pid:0 in
        for k = 1 to 40 do
          if Random.State.bool st then begin
            let i = Random.State.int st m in
            model.(i) <- k;
            S.update h i k
          end
          else begin
            let r = Random.State.int st (m + 1) in
            let idxs = Array.init r (fun _ -> Random.State.int st m) in
            let expected = Array.map (fun i -> model.(i)) idxs in
            let got = S.scan h idxs in
            if got <> expected then
              Alcotest.failf "sequential model mismatch (m=%d)" m
          end
        done)
  done

(* ---- concurrent runs: history recording ---- *)

(* values are globally unique: pid * 10_000 + seq; init components are
   distinct negatives, as required by the observation checker *)
let init_of_m m = Array.init m (fun i -> -(i + 1))

(* First-class-module-friendly wrapper: one handle per pid, exposed as plain
   closures so the abstract type does not escape. *)
type wrapped = {
  w_update : int -> int -> int -> unit;  (** pid, component, value *)
  w_scan : int -> int array -> int array;  (** pid, components *)
}

let wrap (module S : SNAP) ~n init =
  let t = S.create ~n init in
  let handles = Array.init n (fun pid -> S.handle t ~pid) in
  {
    w_update = (fun pid i v -> S.update handles.(pid) i v);
    w_scan = (fun pid idxs -> S.scan handles.(pid) idxs);
  }

let updater w hist ~pid ~updates ~m ~mstride () =
  for k = 1 to updates do
    let i = ((k * mstride) + pid) mod m in
    let v = (pid * 10_000) + k in
    ignore
      (History.record hist ~pid (Snapshot_spec.Update (i, v)) (fun () ->
           w.w_update pid i v;
           Snapshot_spec.Ack))
  done

let scanner w hist ~pid ~scans ~idxs () =
  for _ = 1 to scans do
    ignore
      (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
           Snapshot_spec.Vals (w.w_scan pid idxs)))
  done

let assert_linearizable ~init hist =
  if not (Snapshot_spec.check ~init (History.entries hist)) then
    Alcotest.fail "history not linearizable"

let assert_obs_clean ~init hist =
  match Snapshot_spec.check_observations ~init (History.entries hist) with
  | [] -> ()
  | v :: _ -> Alcotest.failf "violation: %a" Snapshot_spec.pp_violation v

let test_concurrent_small (module S : SNAP) () =
  (* 2 updaters x 3 updates + 2 scanners x 2 scans = 10 ops: exact check. *)
  let m = 4 in
  let init = init_of_m m in
  let schedulers seed =
    [
      Scheduler.random ~seed ();
      Scheduler.bursty ~seed ();
      Scheduler.starve ~victims:[ 2; 3 ] ~seed ();
      Scheduler.pct ~seed ~depth:3 ~expected_steps:400 ();
    ]
  in
  for seed = 0 to 39 do
    List.iter
      (fun sched ->
        let hist = History.create ~now:Sim.mark () in
        let w = wrap (module S) ~n:4 (Array.copy init) in
        let procs =
          [|
            updater w hist ~pid:0 ~updates:3 ~m ~mstride:1;
            updater w hist ~pid:1 ~updates:3 ~m ~mstride:2;
            scanner w hist ~pid:2 ~scans:2 ~idxs:[| 0; 2 |];
            scanner w hist ~pid:3 ~scans:2 ~idxs:[| 1; 2; 3 |];
          |]
        in
        ignore (Sim.run ~sched procs);
        assert_linearizable ~init hist)
      (schedulers seed)
  done

let test_concurrent_large (module S : SNAP) () =
  (* 3 updaters x 25 updates + 2 scanners x 10 scans: observation check. *)
  let m = 8 in
  let init = init_of_m m in
  for seed = 0 to 14 do
    let hist = History.create ~now:Sim.mark () in
    let w = wrap (module S) ~n:5 (Array.copy init) in
    let procs =
      [|
        updater w hist ~pid:0 ~updates:25 ~m ~mstride:1;
        updater w hist ~pid:1 ~updates:25 ~m ~mstride:3;
        updater w hist ~pid:2 ~updates:25 ~m ~mstride:5;
        scanner w hist ~pid:3 ~scans:10 ~idxs:[| 0; 3; 6 |];
        scanner w hist ~pid:4 ~scans:10 ~idxs:[| 1; 3; 7 |];
      |]
    in
    ignore (Sim.run ~sched:(Scheduler.random ~seed ()) procs);
    assert_obs_clean ~init hist
  done

let test_crash_tolerance (module S : SNAP) () =
  (* Updaters crash at arbitrary points; surviving scans stay correct. *)
  let m = 4 in
  let init = init_of_m m in
  for seed = 0 to 19 do
    let at_clock = 7 * seed in
    let hist = History.create ~now:Sim.mark () in
    let w = wrap (module S) ~n:4 (Array.copy init) in
    let procs =
      [|
        updater w hist ~pid:0 ~updates:10 ~m ~mstride:1;
        updater w hist ~pid:1 ~updates:10 ~m ~mstride:2;
        scanner w hist ~pid:2 ~scans:6 ~idxs:[| 0; 1; 2 |];
        scanner w hist ~pid:3 ~scans:6 ~idxs:[| 2; 3 |];
      |]
    in
    let sched =
      Scheduler.with_crash ~pid:(seed mod 2) ~at_clock
        (Scheduler.random ~seed ())
    in
    ignore (Sim.run ~sched procs);
    assert_obs_clean ~init hist
  done

(* crash a SCANNER mid-scan: its announcement stays published forever; later
   updates must still terminate and stay correct *)
let test_crashed_scanner_announcement (module S : SNAP) () =
  let m = 4 in
  let init = init_of_m m in
  for seed = 0 to 9 do
    let hist = History.create ~now:Sim.mark () in
    let w = wrap (module S) ~n:3 (Array.copy init) in
    let procs =
      [|
        scanner w hist ~pid:0 ~scans:4 ~idxs:[| 0; 1; 2; 3 |];
        updater w hist ~pid:1 ~updates:15 ~m ~mstride:1;
        scanner w hist ~pid:2 ~scans:5 ~idxs:[| 1; 3 |];
      |]
    in
    let sched =
      Scheduler.with_crash ~pid:0 ~at_clock:(3 + seed)
        (Scheduler.random ~seed ())
    in
    ignore (Sim.run ~sched procs);
    assert_obs_clean ~init hist
  done

(* ---- sensitivity: a broken snapshot must be rejected ---- *)

(* "Snapshot" whose scan is a single collect — the naive algorithm the
   introduction of the paper explains is inconsistent. *)
module Naive = struct
  module M = Mem.Sim

  type t = int M.ref_ array

  let create init : t = Array.map (fun v -> M.make v) init

  let update (t : t) i v = M.write t.(i) v

  let scan (t : t) idxs = Array.map (fun i -> M.read t.(i)) idxs
end

let test_naive_is_caught () =
  (* Two sequential scans straddling two concurrent updates can observe them
     in opposite orders; the exact checker must reject at least one seed. *)
  let caught = ref false in
  let seed = ref 0 in
  while (not !caught) && !seed < 400 do
    let init = [| -1; -2 |] in
    let hist = History.create ~now:Sim.mark () in
    let t = Naive.create (Array.copy init) in
    let procs =
      [|
        (fun () ->
          for k = 1 to 3 do
            ignore
              (History.record hist ~pid:0
                 (Snapshot_spec.Update (0, k))
                 (fun () ->
                   Naive.update t 0 k;
                   Snapshot_spec.Ack))
          done);
        (fun () ->
          for k = 1 to 3 do
            ignore
              (History.record hist ~pid:1
                 (Snapshot_spec.Update (1, 100 + k))
                 (fun () ->
                   Naive.update t 1 (100 + k);
                   Snapshot_spec.Ack))
          done);
        (fun () ->
          for _ = 1 to 3 do
            ignore
              (History.record hist ~pid:2
                 (Snapshot_spec.Scan [| 0; 1 |])
                 (fun () -> Snapshot_spec.Vals (Naive.scan t [| 0; 1 |])))
          done);
        (fun () ->
          for _ = 1 to 3 do
            ignore
              (History.record hist ~pid:3
                 (Snapshot_spec.Scan [| 1; 0 |])
                 (fun () -> Snapshot_spec.Vals (Naive.scan t [| 1; 0 |])))
          done);
      |]
    in
    ignore (Sim.run ~sched:(Scheduler.random ~seed:!seed ()) procs);
    if not (Snapshot_spec.check ~init (History.entries hist)) then
      caught := true;
    incr seed
  done;
  check_bool "naive snapshot rejected under some schedule" true !caught

(* ---- locality guarantee of the views (helping invariant) ---- *)

let test_borrowed_views_cover_requests (module S : SNAP) () =
  (* View.find_exn inside scan raises if a borrowed view misses a requested
     component; heavy starvation maximizes borrowing.  Completing without
     exception is the assertion. *)
  let m = 10 in
  for seed = 0 to 19 do
    let t = S.create ~n:5 (init_of_m m) in
    let upd pid () =
      let h = S.handle t ~pid in
      for k = 1 to 40 do
        S.update h ((k + pid) mod m) ((pid * 10_000) + k)
      done
    in
    let scn pid idxs () =
      let h = S.handle t ~pid in
      for _ = 1 to 6 do
        let v = S.scan h idxs in
        assert (Array.length v = Array.length idxs)
      done
    in
    let procs =
      [|
        upd 0; upd 1; upd 2; scn 3 [| 1; 4; 7 |]; scn 4 [| 0; 2; 4; 6; 8 |];
      |]
    in
    ignore
      (Sim.run ~sched:(Scheduler.starve ~victims:[ 3; 4 ] ~seed ()) procs)
  done

let per_impl name f =
  List.map
    (fun (iname, m) -> Alcotest.test_case (iname ^ ": " ^ name) `Quick (f m))
    impls

let () =
  Alcotest.run "snapshot"
    [
      ( "sequential",
        per_impl "update/scan" test_sequential
        @ per_impl "scan arg shapes" test_scan_argument_shapes
        @ per_impl "random model" test_sequential_model );
      ( "linearizable",
        per_impl "small histories, exact check" test_concurrent_small
        @ per_impl "large histories, obs check" test_concurrent_large );
      ( "crashes",
        per_impl "crashed updaters" test_crash_tolerance
        @ per_impl "crashed scanner's announcement" test_crashed_scanner_announcement
      );
      ( "sensitivity",
        [ Alcotest.test_case "naive collect caught" `Quick test_naive_is_caught ]
      );
      ("helping", per_impl "borrowed views cover requests" test_borrowed_views_cover_requests);
    ]
