(* Tests of the crash–restart fault model: incarnation semantics in the
   kernel, nemesis schedulers, linearizability of Figures 1–3 under chaos
   schedules with restarts, the Detectable exactly-once wrapper (and the
   double-apply bug of naive re-invocation it fixes), and ddmin schedule
   shrinking. *)

open Psnap
module M = Mem.Sim
module D = Psnap_apps.Detectable
module DSpec = D.Spec

(* Same discipline as the rest of the suite: every simulated access must
   happen at a scheduling point of the current run. *)
let () = M.set_strict true

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let rr () = Scheduler.round_robin ()

let forced decisions =
  Scheduler.replay_decisions ~fallback:(rr ()) decisions

(* ---- kernel: incarnation semantics ---- *)

let test_restart_respawns_on_recovery () =
  let r = M.make 0 in
  let observed = ref [] in
  let body () =
    M.write r 1;
    M.write r 2
  in
  let recover ~pid:_ ~incarnation () =
    (* Local state is gone; shared memory survives the crash. *)
    observed := (incarnation, M.read r) :: !observed;
    M.write r 10
  in
  let sched =
    forced [ Scheduler.Run 0; Scheduler.Crash 0; Scheduler.Restart 0 ]
  in
  let res = Sim.run ~record_trace:true ~recover ~sched [| body |] in
  check_bool "completed" true (res.outcome = Sim.Completed);
  Alcotest.(check (list (pair int int)))
    "recovery ran as incarnation 2 and saw the surviving write" [ (2, 1) ]
    !observed;
  Alcotest.(check (array int)) "incarnation count" [| 2 |] res.incarnations;
  Alcotest.(check (list int)) "kill recorded" [ 0 ] res.crashed;
  Alcotest.(check (list int)) "restart in trace" [ 0 ]
    (Trace.restarts res.trace);
  (* write1 + recovery's read + write = 3 executed steps; the pending
     write2 died with the crash *)
  check_int "steps across incarnations" 3 res.steps.(0)

let test_crashed_pid_never_restarted_is_legal () =
  (* Providing a recovery function does not oblige the scheduler to use
     it: a run where a crashed pid stays down forever must complete. *)
  let r = M.make 0 in
  let body () = M.write r 1 in
  let recover ~pid:_ ~incarnation:_ () = M.write r 99 in
  let sched = forced [ Scheduler.Crash 0 ] in
  let res = Sim.run ~recover ~sched [| body |] in
  check_bool "completed with pid down" true (res.outcome = Sim.Completed);
  Alcotest.(check (array int)) "no restart" [| 1 |] res.incarnations

let test_restart_without_recovery_rejected () =
  let r = M.make 0 in
  let k = ref 0 in
  let pick _ =
    incr k;
    if !k = 1 then Scheduler.Crash 0 else Scheduler.Restart 0
  in
  (* A second live process keeps the run going past the crash; without
     one the run would (legally) complete before the Restart is asked. *)
  Alcotest.check_raises "restart needs a recovery function"
    (Failure "Sim.run: restart without a recovery function") (fun () ->
      ignore
        (Sim.run
           ~sched:{ Scheduler.name = "bad"; pick }
           [| (fun () -> M.write r 1); (fun () -> M.write r 2) |]))

let test_restart_of_running_pid_rejected () =
  let r = M.make 0 in
  let recover ~pid:_ ~incarnation:_ () = () in
  Alcotest.check_raises "only crashed pids restart"
    (Failure "Sim.run: restart of a non-crashed process") (fun () ->
      ignore
        (Sim.run ~recover
           ~sched:{ Scheduler.name = "bad"; pick = (fun _ -> Scheduler.Restart 0) }
           [| (fun () -> M.write r 1) |]))

let test_fault_budget_bounds_crash_restart_loops () =
  (* Crash and Restart decisions do not advance the clock; an adversary
     looping on them forever must still hit the step budget (the audit
     fix: without the fault counter this run would never terminate). *)
  let r = M.make 0 in
  let body () = M.write r 1 in
  let recover ~pid:_ ~incarnation:_ () = M.write r 2 in
  let k = ref 0 in
  let pick _ =
    incr k;
    if !k mod 2 = 1 then Scheduler.Crash 0 else Scheduler.Restart 0
  in
  Alcotest.check_raises "fault loop exhausts budget" (Sim.Out_of_steps 0)
    (fun () ->
      ignore
        (Sim.run ~max_steps:50 ~recover
           ~sched:{ Scheduler.name = "fault-loop"; pick }
           [| body |]))

let test_multiple_incarnations () =
  let r = M.make 0 in
  let body () = M.write r 1 in
  let recover ~pid:_ ~incarnation:_ () = M.write r 2 in
  let sched =
    forced
      [
        Scheduler.Crash 0;
        Scheduler.Restart 0;
        Scheduler.Crash 0;
        Scheduler.Restart 0;
        Scheduler.Crash 0;
        Scheduler.Restart 0;
      ]
  in
  let res = Sim.run ~record_trace:true ~recover ~sched [| body |] in
  Alcotest.(check (array int)) "three restarts" [| 4 |] res.incarnations;
  Alcotest.(check (list int)) "every kill recorded" [ 0; 0; 0 ] res.crashed;
  check_int "restart events" 3 (List.length (Trace.restarts res.trace))

let trace_signature res =
  List.map
    (function
      | Event.Step { pid; op; clock; _ } -> (pid, op, clock)
      | Event.Crash { pid; clock } -> (pid, Event.Read, -clock)
      | Event.Restart { pid; clock; _ } -> (pid, Event.Write, -clock)
      | Event.Mem_fault { oid; clock; _ } -> (oid, Event.Cas, -clock)
      | Event.Power_loss { clock } -> (-1, Event.Faa, -clock)
      | Event.Net_fault { src; dst; clock; _ } -> (src + dst, Event.Faa, -clock)
      | Event.Reconfig { clock } -> (-2, Event.Faa, -clock))
    res.Sim.trace

let test_chaos_deterministic () =
  let program () =
    let r = M.make 0 in
    ( Array.init 3 (fun pid () ->
          for k = 1 to 8 do
            if k mod 2 = 0 then M.write r (pid + k) else ignore (M.read r)
          done),
      fun ~pid:_ ~incarnation:_ () ->
        for _ = 1 to 4 do
          ignore (M.read r)
        done )
  in
  let run seed =
    let procs, recover = program () in
    Sim.run ~record_trace:true ~recover
      ~sched:(Scheduler.chaos ~seed ~rate:0.2 ~max_restart_delay:6 ())
      procs
  in
  let a = run 3 and b = run 3 in
  check_bool "same seed, same execution" true
    (trace_signature a = trace_signature b);
  let c = run 4 in
  check_bool "different seed, different execution" true
    (trace_signature a <> trace_signature c)

(* ---- replay of decision lists ---- *)

let test_replay_decisions_strict_and_lenient () =
  let mk () =
    let r = M.make 0 in
    Array.init 2 (fun _ () -> ignore (M.read r))
  in
  (* strict: a decision for a non-runnable pid is an error *)
  (match
     Sim.run
       ~sched:(Scheduler.replay_decisions [ Scheduler.Crash 7 ])
       (mk ())
   with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  (* lenient: the same decision is skipped and the rest applies *)
  let res =
    Sim.run
      ~sched:
        (Scheduler.replay_decisions ~lenient:true ~fallback:(rr ())
           [ Scheduler.Crash 7; Scheduler.Run 1; Scheduler.Run 0 ])
      (mk ())
  in
  check_bool "lenient replay completes" true (res.outcome = Sim.Completed)

(* ---- shrink: ddmin over decision lists ---- *)

let test_ddmin_minimizes () =
  let schedule = List.init 64 (fun i -> i) in
  (* failure = the subsequence contains both 13 and 37 *)
  let oracle c = List.mem 13 c && List.mem 37 c in
  let minimal, calls = Shrink.minimize ~oracle schedule in
  Alcotest.(check (list int)) "exact minimum" [ 13; 37 ] minimal;
  check_bool "spent oracle calls" true (calls > 1)

let test_ddmin_rejects_passing_schedule () =
  match Shrink.minimize ~oracle:(fun _ -> false) [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_ddmin_empty_schedule () =
  (* an empty failing schedule is already minimal *)
  let minimal, _calls = Shrink.minimize ~oracle:(fun _ -> true) [] in
  Alcotest.(check (list int)) "empty stays empty" [] minimal

let test_ddmin_already_minimal () =
  (* 1-minimal input: ddmin must return it unchanged (order preserved) *)
  let schedule = [ 5; 9; 2 ] in
  let oracle c = List.mem 5 c && List.mem 9 c && List.mem 2 c in
  let minimal, _calls = Shrink.minimize ~oracle schedule in
  Alcotest.(check (list int)) "unchanged" schedule minimal

let test_ddmin_needs_whole_schedule () =
  (* the oracle fails on every proper sub-list: nothing can be removed *)
  let schedule = List.init 9 (fun i -> i) in
  let oracle c = List.length c = 9 in
  let minimal, calls = Shrink.minimize ~oracle schedule in
  Alcotest.(check (list int)) "whole schedule survives" schedule minimal;
  check_bool "tried sub-lists before giving up" true (calls > 1)

let test_schedule_file_roundtrip () =
  let decisions =
    [
      Scheduler.Run 3;
      Scheduler.Crash 0;
      Scheduler.Restart 0;
      Scheduler.Run 0;
      Scheduler.Stop;
    ]
  in
  let path = Filename.temp_file "psnap" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Shrink.save path decisions;
      Alcotest.(check bool)
        "roundtrip" true
        (Shrink.load path = decisions))

(* ---- Figures 1 and 3 stay linearizable under chaos with restarts ---- *)

(* Updaters write incarnation-tagged values (all globally unique), so the
   observation checker retains full precision; a restarted process rebuilds
   its handle — all local state — from scratch. *)
let snapshot_chaos_campaign (module S : Snapshot.S) ~seeds =
  let m = 8 and n = 3 in
  let init = Array.init m (fun i -> -(i + 1)) in
  let restarts = ref 0 in
  for seed = 0 to seeds - 1 do
    let hist = History.create ~now:Sim.mark () in
    let t = S.create ~n (Array.copy init) in
    let updater ~incarnation pid () =
      let h = S.handle t ~pid in
      for k = 1 to 6 do
        let i = (k + (pid * 3)) mod m in
        let v = (pid * 1_000_000) + (incarnation * 10_000) + k in
        ignore
          (History.record hist ~pid (Snapshot_spec.Update (i, v)) (fun () ->
               S.update h i v;
               Snapshot_spec.Ack))
      done
    in
    let scanner pid () =
      let h = S.handle t ~pid in
      let idxs = [| 0; 2; 5 |] in
      for _ = 1 to 4 do
        ignore
          (History.record hist ~pid (Snapshot_spec.Scan idxs) (fun () ->
               Snapshot_spec.Vals (S.scan h idxs)))
      done
    in
    let body ~incarnation pid =
      if pid < n - 1 then updater ~incarnation pid else scanner pid
    in
    let recover ~pid ~incarnation = body ~incarnation pid in
    let res =
      Sim.run ~recover
        ~sched:(Scheduler.chaos ~seed ~rate:0.08 ~max_restart_delay:12 ())
        (Array.init n (body ~incarnation:1))
    in
    restarts :=
      !restarts + Array.fold_left (fun a i -> a + (i - 1)) 0 res.incarnations;
    let viols = Snapshot_spec.check_observations ~init (History.entries hist) in
    if viols <> [] then
      Alcotest.failf "seed %d: %a" seed
        Fmt.(list ~sep:comma Snapshot_spec.pp_violation)
        (List.filteri (fun i _ -> i < 3) viols)
  done;
  check_bool "campaign injected restarts" true (!restarts > 0)

let test_fig1_linearizable_under_chaos () =
  snapshot_chaos_campaign (module Sim_fig1) ~seeds:25

let test_fig3_linearizable_under_chaos () =
  snapshot_chaos_campaign (module Sim_fig3) ~seeds:25

(* ---- Figure 2 (active set) under chaos with restarts ---- *)

let test_fig2_valid_under_chaos () =
  let module A = Sim_aset_fai in
  let module AC = Activeset_check in
  let n = 4 in
  let restarts = ref 0 in
  for seed = 0 to 19 do
    let hist = History.create ~now:Sim.mark () in
    let t = A.create ~n () in
    let member pid () =
      let h = A.handle t ~pid in
      for _ = 1 to 3 do
        ignore (History.record hist ~pid AC.Join (fun () -> A.join h; AC.Ack));
        ignore
          (History.record hist ~pid AC.Get_set (fun () ->
               AC.Set (A.get_set t)));
        ignore (History.record hist ~pid AC.Leave (fun () -> A.leave h; AC.Ack))
      done
    in
    let observer pid () =
      for _ = 1 to 4 do
        ignore
          (History.record hist ~pid AC.Get_set (fun () ->
               AC.Set (A.get_set t)))
      done
    in
    (* A crashed member is "transitioning forever" (its join/leave was cut,
       or it never left); its new incarnation must not re-join — the
       per-process alternation belongs to the dead incarnation — so
       recovery demotes it to a pure observer.  Its getSets must still be
       valid. *)
    let recover ~pid ~incarnation:_ = observer pid in
    let res =
      Sim.run ~recover
        ~sched:(Scheduler.chaos ~seed ~rate:0.08 ~max_restart_delay:12 ())
        (Array.init n (fun pid ->
             if pid < n - 1 then member pid else observer pid))
    in
    restarts :=
      !restarts + Array.fold_left (fun a i -> a + (i - 1)) 0 res.incarnations;
    match AC.check (History.entries hist) with
    | [] -> ()
    | v :: _ -> Alcotest.failf "seed %d: %a" seed AC.pp_violation v
  done;
  check_bool "campaign injected restarts" true (!restarts > 0)

(* ---- Detectable: exactly-once updates across incarnations ---- *)

module Det = D.Make (M) (Sim_fig3)

let test_detectable_skips_claimed_request () =
  let t = Det.create ~n:1 [| 0; 0 |] in
  let outcomes = ref [] in
  let body () =
    let h = Det.handle t ~pid:0 in
    outcomes := Det.update h ~seq:0 0 41 :: !outcomes;
    (* a re-submission of the same request is detected and refused *)
    outcomes := Det.update h ~seq:0 0 42 :: !outcomes;
    check_int "claim register remembers" 0 (Det.resume h);
    Alcotest.(check (array int)) "first submission won" [| 41 |]
      (Det.scan h [| 0 |])
  in
  ignore (Sim.run ~sched:(rr ()) [| body |]);
  check_bool "applied then skipped" true (!outcomes = [ `Skipped; `Applied ])

let test_detectable_resume_after_crash () =
  (* Crash p0 after its first update completed; the new incarnation learns
     from the claim register exactly which requests are settled.  A
     calibration run measures how many steps [handle + update seq 0] takes
     solo, so the crash lands exactly between the two updates. *)
  let s0 =
    let t = Det.create ~n:1 [| 0; 0 |] in
    let body () =
      let h = Det.handle t ~pid:0 in
      ignore (Det.update h ~seq:0 0 7)
    in
    (Sim.run ~sched:(rr ()) [| body |]).steps.(0)
  in
  let t = Det.create ~n:1 [| 0; 0 |] in
  let seen = ref None in
  let body () =
    let h = Det.handle t ~pid:0 in
    ignore (Det.update h ~seq:0 0 7);
    ignore (Det.update h ~seq:1 1 8)
  in
  let recover ~pid ~incarnation:_ () =
    let h = Det.handle t ~pid in
    seen := Some (Det.resume h, Det.status h ~seq:0, Det.status h ~seq:1)
  in
  (* Crash two steps past update seq 0: seq 1's claim is read and written
     but its apply has not started — the claim–apply window. *)
  let killed = ref false in
  let pick (v : Scheduler.view) =
    if Scheduler.is_restartable v 0 then Scheduler.Restart 0
    else if (not !killed) && v.Scheduler.steps_of 0 >= s0 + 2 then (
      killed := true;
      Scheduler.Crash 0)
    else if Scheduler.is_runnable v 0 then Scheduler.Run 0
    else Scheduler.Stop
  in
  ignore
    (Sim.run ~recover ~sched:{ Scheduler.name = "targeted"; pick } [| body |]);
  let status_str = function
    | `Completed -> "completed"
    | `Maybe_lost -> "maybe-lost"
    | `Never_claimed -> "never-claimed"
  in
  match !seen with
  | None -> Alcotest.fail "recovery never ran"
  | Some (resume, st0, st1) ->
    check_int "resume = highest claimed seq" 1 resume;
    Alcotest.(check string)
      "seq 0 applied and acknowledged" "completed" (status_str st0);
    Alcotest.(check string)
      "seq 1 crashed in the claim window" "maybe-lost" (status_str st1)

(* The shared workload for the double-apply demonstrations: p0 submits
   requests (seq 0: component 0 := A, seq 1: component 1 := C); p1 submits
   (seq 0: component 0 := B) and then scans component 0.  A crash–restart
   of a process re-drives its whole request log.  With naive (raw)
   re-invocation, p0's restart can re-apply A after B landed, so p1's scan
   sees the overwritten A again — no linearization of the opid spec
   (duplicates are absorbed, so A cannot reappear) explains that. *)

let vA = 111

let vB = 222

let vC = 333

let raw_store_run ~record_trace ~sched =
  let regs = [| M.make (-1); M.make (-2) |] in
  let hist = History.create ~now:Sim.mark () in
  let drive_log ~pid log =
    List.iter
      (fun (seq, i, v) ->
        ignore
          (History.record hist ~pid (DSpec.Up { pid; seq; i; v }) (fun () ->
               M.write regs.(i) v;
               DSpec.Ack)))
      log
  in
  let p0 () = drive_log ~pid:0 [ (0, 0, vA); (1, 1, vC) ] in
  let p1 () =
    drive_log ~pid:1 [ (0, 0, vB) ];
    for _ = 1 to 3 do
      ignore
        (History.record hist ~pid:1 (DSpec.Scan [| 0 |]) (fun () ->
             DSpec.Vals [| M.read regs.(0) |]))
    done
  in
  (* Raw at-least-once recovery: re-drive the whole log, no detection. *)
  let recover ~pid ~incarnation:_ () = if pid = 0 then p0 () else p1 () in
  let res = Sim.run ~record_trace ~recover ~sched [| p0; p1 |] in
  let linearizable =
    D.Checker.check
      ~init:(DSpec.init ~n:2 [| -1; -2 |])
      (History.entries hist)
  in
  (res, linearizable)

let raw_store_fails decisions =
  match
    raw_store_run ~record_trace:false
      ~sched:(Scheduler.replay_decisions ~lenient:true ~fallback:(rr ()) decisions)
  with
  | _, linearizable -> not linearizable
  | exception _ -> true

let find_failing_seed ~run ~seeds =
  let rec go seed =
    if seed >= seeds then None
    else
      let _, linearizable =
        run ~record_trace:false
          ~sched:(Scheduler.chaos ~seed ~rate:0.3 ~max_restart_delay:4 ())
      in
      if not linearizable then Some seed else go (seed + 1)
  in
  go 0

let test_planted_double_apply_found_and_shrunk () =
  (* 1. the chaos nemesis finds the planted bug *)
  let seed =
    match find_failing_seed ~run:raw_store_run ~seeds:300 with
    | Some s -> s
    | None -> Alcotest.fail "chaos never triggered the double-apply bug"
  in
  (* 2. the failing execution replays exactly from its recorded schedule *)
  let res, _ =
    raw_store_run ~record_trace:true
      ~sched:(Scheduler.chaos ~seed ~rate:0.3 ~max_restart_delay:4 ())
  in
  let schedule = Trace.schedule res.trace in
  check_bool "recorded schedule reproduces the failure" true
    (raw_store_fails schedule);
  (* 3. ddmin shrinks it to a minimal schedule that still fails *)
  let minimal, _calls = Shrink.minimize ~oracle:raw_store_fails schedule in
  check_bool "minimal schedule still fails under replay" true
    (raw_store_fails minimal);
  check_bool
    (Printf.sprintf "minimal schedule is small (%d decisions <= 12)"
       (List.length minimal))
    true
    (List.length minimal <= 12);
  (* 1-minimality: dropping any single decision makes the failure vanish *)
  List.iteri
    (fun i _ ->
      let cand = List.filteri (fun j _ -> j <> i) minimal in
      check_bool "1-minimal" false (raw_store_fails cand))
    minimal

(* Same workload over the real Figure 3 object: raw re-invocation double-
   applies there too (the re-applied A record can even void B's CAS), while
   the Detectable wrapper survives the identical nemesis. *)

let fig3_raw_run ~record_trace ~sched =
  let t = Sim_fig3.create ~n:2 [| -1; -2 |] in
  let hist = History.create ~now:Sim.mark () in
  let drive_log ~pid log =
    let h = Sim_fig3.handle t ~pid in
    List.iter
      (fun (seq, i, v) ->
        ignore
          (History.record hist ~pid (DSpec.Up { pid; seq; i; v }) (fun () ->
               Sim_fig3.update h i v;
               DSpec.Ack)))
      log
  in
  let scan_once ~pid h =
    ignore
      (History.record hist ~pid (DSpec.Scan [| 0 |]) (fun () ->
           DSpec.Vals (Sim_fig3.scan h [| 0 |])))
  in
  let p0 () = drive_log ~pid:0 [ (0, 0, vA); (1, 1, vC) ] in
  let p1 () =
    drive_log ~pid:1 [ (0, 0, vB) ];
    let h = Sim_fig3.handle t ~pid:1 in
    for _ = 1 to 3 do
      scan_once ~pid:1 h
    done
  in
  let recover ~pid ~incarnation:_ () = if pid = 0 then p0 () else p1 () in
  let res = Sim.run ~record_trace ~recover ~sched [| p0; p1 |] in
  let linearizable =
    D.Checker.check
      ~init:(DSpec.init ~n:2 [| -1; -2 |])
      (History.entries hist)
  in
  (res, linearizable)

let test_fig3_raw_reinvocation_double_applies () =
  match find_failing_seed ~run:fig3_raw_run ~seeds:300 with
  | Some _ -> ()
  | None ->
    Alcotest.fail
      "raw Figure 3 re-invocation never double-applied under chaos"

let test_detectable_exactly_once_campaign () =
  (* The acceptance bar: >= 100 seeded crash–restart runs, all passing the
     exactly-once spec, with the chaos parameters under which the raw
     recovery double-applies. *)
  let seeds = 120 in
  let restarts = ref 0 in
  let detections = ref 0 in
  for seed = 0 to seeds - 1 do
    let t = Det.create ~n:2 [| -1; -2 |] in
    let hist = History.create ~now:Sim.mark () in
    let drive_log ~pid log =
      let h = Det.handle t ~pid in
      List.iter
        (fun (seq, i, v) ->
          (* Recovery protocol: consult the claim register; re-submit only
             requests it does not account for.  [resume] is shared state,
             so this survives arbitrarily many incarnations. *)
          if seq > Det.resume h then
            ignore
              (History.record hist ~pid (DSpec.Up { pid; seq; i; v })
                 (fun () ->
                   (match Det.update h ~seq i v with
                   | `Applied -> ()
                   | `Skipped -> incr detections);
                   DSpec.Ack))
          else incr detections)
        log
    in
    let p0 () = drive_log ~pid:0 [ (0, 0, vA); (1, 1, vC) ] in
    let p1 () =
      drive_log ~pid:1 [ (0, 0, vB) ];
      let h = Det.handle t ~pid:1 in
      for _ = 1 to 3 do
        ignore
          (History.record hist ~pid:1 (DSpec.Scan [| 0 |]) (fun () ->
               DSpec.Vals (Det.scan h [| 0 |])))
      done
    in
    let recover ~pid ~incarnation:_ () = if pid = 0 then p0 () else p1 () in
    let res =
      Sim.run ~recover
        ~sched:(Scheduler.chaos ~seed ~rate:0.3 ~max_restart_delay:4 ())
        [| p0; p1 |]
    in
    restarts :=
      !restarts + Array.fold_left (fun a i -> a + (i - 1)) 0 res.incarnations;
    let ok =
      D.Checker.check
        ~init:(DSpec.init ~n:2 [| -1; -2 |])
        (History.entries hist)
    in
    if not ok then Alcotest.failf "seed %d: exactly-once spec violated" seed
  done;
  check_bool "campaign injected restarts" true (!restarts > 20);
  check_bool "claim register actually detected duplicates" true
    (!detections > 0)

(* ---- weak CAS: the helping loops tolerate spurious failure ---- *)

let test_fig3_tolerates_weak_cas () =
  (* With seeded spurious CAS failures on, Figure 3's update retries while
     the location is physically unchanged ([@psnap.helping] loop) and its
     active set's one-shot CAS optimizations degrade gracefully; histories
     must stay linearizable and no update may be silently dropped. *)
  M.set_weak_cas ~seed:11 ~rate:0.3 ();
  Fun.protect ~finally:M.clear_weak_cas (fun () ->
      snapshot_chaos_campaign (module Sim_fig3) ~seeds:10;
      check_bool "spurious failures actually injected" true
        (M.weak_cas_spurious () > 0))

let test_weak_cas_update_not_lost () =
  (* The sharpest form of the claim: a solo updater whose CAS fails only
     spuriously must still publish its value. *)
  M.set_weak_cas ~seed:5 ~rate:0.5 ();
  Fun.protect ~finally:M.clear_weak_cas (fun () ->
      let t = Sim_fig3.create ~n:1 [| 0 |] in
      let body () =
        let h = Sim_fig3.handle t ~pid:0 in
        Sim_fig3.update h 0 42;
        Alcotest.(check (array int))
          "update survived spurious failures" [| 42 |]
          (Sim_fig3.scan h [| 0 |])
      in
      ignore (Sim.run ~sched:(rr ()) [| body |]);
      check_bool "at least one spurious failure hit the update" true
        (M.weak_cas_spurious () > 0))

let () =
  Alcotest.run "crash_restart"
    [
      ( "kernel",
        [
          Alcotest.test_case "restart respawns on recovery" `Quick
            test_restart_respawns_on_recovery;
          Alcotest.test_case "unrestarted crash is legal" `Quick
            test_crashed_pid_never_restarted_is_legal;
          Alcotest.test_case "restart needs recovery fn" `Quick
            test_restart_without_recovery_rejected;
          Alcotest.test_case "restart needs crashed pid" `Quick
            test_restart_of_running_pid_rejected;
          Alcotest.test_case "fault budget" `Quick
            test_fault_budget_bounds_crash_restart_loops;
          Alcotest.test_case "multiple incarnations" `Quick
            test_multiple_incarnations;
          Alcotest.test_case "chaos deterministic" `Quick
            test_chaos_deterministic;
        ] );
      ( "replay",
        [
          Alcotest.test_case "decision replay strict/lenient" `Quick
            test_replay_decisions_strict_and_lenient;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "ddmin minimizes" `Quick test_ddmin_minimizes;
          Alcotest.test_case "passing schedule rejected" `Quick
            test_ddmin_rejects_passing_schedule;
          Alcotest.test_case "empty schedule" `Quick test_ddmin_empty_schedule;
          Alcotest.test_case "already 1-minimal input" `Quick
            test_ddmin_already_minimal;
          Alcotest.test_case "irreducible schedule" `Quick
            test_ddmin_needs_whole_schedule;
          Alcotest.test_case "schedule file roundtrip" `Quick
            test_schedule_file_roundtrip;
        ] );
      ( "lin-under-chaos",
        [
          Alcotest.test_case "fig1" `Slow test_fig1_linearizable_under_chaos;
          Alcotest.test_case "fig3" `Slow test_fig3_linearizable_under_chaos;
          Alcotest.test_case "fig2 active set" `Slow
            test_fig2_valid_under_chaos;
        ] );
      ( "detectable",
        [
          Alcotest.test_case "claim skips duplicates" `Quick
            test_detectable_skips_claimed_request;
          Alcotest.test_case "resume after crash" `Quick
            test_detectable_resume_after_crash;
          Alcotest.test_case "planted bug found and shrunk" `Slow
            test_planted_double_apply_found_and_shrunk;
          Alcotest.test_case "raw fig3 double-applies" `Slow
            test_fig3_raw_reinvocation_double_applies;
          Alcotest.test_case "exactly-once campaign" `Slow
            test_detectable_exactly_once_campaign;
        ] );
      ( "weak-cas",
        [
          Alcotest.test_case "fig3 campaign under weak cas" `Slow
            test_fig3_tolerates_weak_cas;
          Alcotest.test_case "solo update not lost" `Quick
            test_weak_cas_update_not_lost;
        ] );
    ]
