(* Exhaustive schedule exploration on tiny configurations: every possible
   interleaving of the processes' shared-memory steps is executed and the
   resulting history checked for linearizability with the exact checker.
   This is the literal form of the paper's "must behave correctly for all
   possible interleavings" (Section 2). *)

open Psnap

module type SNAP = Snapshot.S

let impls : (string * (module SNAP)) list =
  [
    ("afek-full", (module Sim_afek));
    ("fig1-reg", (module Sim_fig1));
    ("fig3-cas", (module Sim_fig3));
    ("farray", (module Sim_farray));
  ]

let explored_label n = Printf.sprintf "schedules explored: %d" n

(* one updater vs one scanner, m = 2 *)
let test_update_vs_scan (module S : SNAP) () =
  let init = [| -1; -2 |] in
  let schedules = ref 0 in
  let make () =
    let hist = History.create ~now:Sim.mark () in
    let t = S.create ~n:2 (Array.copy init) in
    let procs =
      [|
        (fun () ->
          let h = S.handle t ~pid:0 in
          ignore
            (History.record hist ~pid:0 (Snapshot_spec.Update (0, 7)) (fun () ->
                 S.update h 0 7;
                 Snapshot_spec.Ack)));
        (fun () ->
          let h = S.handle t ~pid:1 in
          ignore
            (History.record hist ~pid:1 (Snapshot_spec.Scan [| 0; 1 |])
               (fun () -> Snapshot_spec.Vals (S.scan h [| 0; 1 |]))));
      |]
    in
    ( procs,
      fun () ->
        incr schedules;
        if not (Snapshot_spec.check ~init (History.entries hist)) then
          Alcotest.fail "non-linearizable interleaving found" )
  in
  ignore (Explore.run ~make ());
  (* farray scans are a single step, so that configuration has only ~10
     interleavings; the others have hundreds to thousands *)
  Alcotest.(check bool) (explored_label !schedules) true (!schedules >= 10)

(* Two updaters on the same component vs one scanner.  Three-process
   exhaustive exploration is only tractable for the cheap Afek operations
   (a few steps each); fig1/fig3 scans/updates take ~6-10 steps each and the
   interleaving count is multinomial in step counts (hundreds of millions),
   so those algorithms get the two-process exhaustive tests plus the heavy
   randomized-schedule suites in test_snapshot.ml instead. *)
let test_competing_updates_afek () =
  let module S = Sim_afek in
  let init = [| -1 |] in
  let schedules = ref 0 in
  let make () =
    let hist = History.create ~now:Sim.mark () in
    let t = S.create ~n:3 (Array.copy init) in
    let upd pid v () =
      let h = S.handle t ~pid in
      ignore
        (History.record hist ~pid (Snapshot_spec.Update (0, v)) (fun () ->
             S.update h 0 v;
             Snapshot_spec.Ack))
    in
    let procs =
      [|
        upd 0 10;
        upd 1 20;
        (fun () ->
          let h = S.handle t ~pid:2 in
          ignore
            (History.record hist ~pid:2 (Snapshot_spec.Scan [| 0 |]) (fun () ->
                 Snapshot_spec.Vals (S.scan h [| 0 |]))));
      |]
    in
    ( procs,
      fun () ->
        incr schedules;
        if not (Snapshot_spec.check ~init (History.entries hist)) then
          Alcotest.fail "non-linearizable interleaving found" )
  in
  ignore (Explore.run ~max_runs:1_000_000 ~make ());
  Alcotest.(check bool) (explored_label !schedules) true (!schedules >= 100)

(* Figure 3 CAS-failure path, exhaustively: two competing updaters on one
   component; after both complete, the surviving value must be one of the
   two and a subsequent scan must return it. *)
let test_fig3_competing_updates_exhaustive () =
  let module S = Sim_fig3 in
  let schedules = ref 0 in
  let make () =
    let t = S.create ~n:2 [| -1 |] in
    let upd pid v () =
      let h = S.handle t ~pid in
      S.update h 0 v
    in
    let procs = [| upd 0 10; upd 1 20 |] in
    ( procs,
      fun () ->
        incr schedules;
        (* read back sequentially in a fresh one-process simulation *)
        let out = ref 0 in
        ignore
          (Sim.run ~sched:(Scheduler.round_robin ())
             [|
               (fun () ->
                 let h = S.handle t ~pid:0 in
                 out := (S.scan h [| 0 |]).(0));
             |]);
        if !out <> 10 && !out <> 20 then
          Alcotest.failf "lost both updates: %d" !out )
  in
  ignore (Explore.run ~max_runs:1_000_000 ~make ());
  Alcotest.(check bool) (explored_label !schedules) true (!schedules >= 100)

(* crash at every possible point of an update, scanner must still return a
   linearizable answer *)
let test_crash_everywhere (module S : SNAP) () =
  let init = [| -1; -2 |] in
  (* First measure the crash-free updater step count, then crash at each
     clock value in turn under a fixed scheduler. *)
  let run ~crash_at =
    let hist = History.create ~now:Sim.mark () in
    let t = S.create ~n:2 (Array.copy init) in
    let procs =
      [|
        (fun () ->
          let h = S.handle t ~pid:0 in
          ignore
            (History.record hist ~pid:0 (Snapshot_spec.Update (0, 7)) (fun () ->
                 S.update h 0 7;
                 Snapshot_spec.Ack)));
        (fun () ->
          let h = S.handle t ~pid:1 in
          for _ = 1 to 2 do
            ignore
              (History.record hist ~pid:1 (Snapshot_spec.Scan [| 0; 1 |])
                 (fun () -> Snapshot_spec.Vals (S.scan h [| 0; 1 |])))
          done);
      |]
    in
    let base = Scheduler.round_robin () in
    let sched =
      match crash_at with
      | None -> base
      | Some c -> Scheduler.with_crash ~pid:0 ~at_clock:c base
    in
    let res = Sim.run ~sched procs in
    (res, hist)
  in
  let baseline, _ = run ~crash_at:None in
  for c = 0 to baseline.clock do
    let _, hist = run ~crash_at:(Some c) in
    if not (Snapshot_spec.check ~init (History.entries hist)) then
      Alcotest.failf "non-linearizable after crash at clock %d" c
  done

let per_impl name f =
  List.map
    (fun (iname, m) -> Alcotest.test_case (iname ^ ": " ^ name) `Quick (f m))
    impls

let () =
  Alcotest.run "exhaustive"
    [
      ("update-vs-scan", per_impl "all interleavings" test_update_vs_scan);
      ( "competing-updates",
        [
          Alcotest.test_case "afek: all interleavings" `Quick
            test_competing_updates_afek;
          Alcotest.test_case "fig3: CAS race, all interleavings" `Quick
            test_fig3_competing_updates_exhaustive;
        ] );
      ("crash-everywhere", per_impl "every crash point" test_crash_everywhere);
    ]
