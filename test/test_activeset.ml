(* Tests of both active set implementations: sequential behaviour, validity
   under random and adversarial schedules (checked against the interval
   semantics of Section 2.1), crash tolerance, and the step-complexity
   claims of Theorem 2 for the Figure 2 algorithm. *)

open Psnap

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

module type ASET = Active_set.S

let impls : (string * (module ASET)) list =
  [
    ("bounded", (module Sim_aset_bounded));
    ("fai-cas", (module Sim_aset_fai));
    ("fai-cas-small", (module Sim_aset_fai_small));
    ("farray-aset", (module Sim_aset_farray));
    ("splitter-tree", (module Sim_aset_splitter));
  ]

let in_sim ?sched f =
  let sched = Option.value sched ~default:(Scheduler.round_robin ()) in
  let out = ref None in
  ignore (Sim.run ~sched [| (fun () -> out := Some (f ())) |]);
  Option.get !out

(* ---- sequential behaviour (both implementations) ---- *)

let test_sequential (module A : ASET) () =
  in_sim (fun () ->
      let t = A.create ~n:4 () in
      let h = A.handle t ~pid:2 in
      Alcotest.(check (list int)) "initially empty" [] (A.get_set t);
      A.join h;
      Alcotest.(check (list int)) "member after join" [ 2 ] (A.get_set t);
      A.leave h;
      Alcotest.(check (list int)) "gone after leave" [] (A.get_set t);
      (* rejoin cycles *)
      for _ = 1 to 5 do
        A.join h;
        Alcotest.(check (list int)) "member again" [ 2 ] (A.get_set t);
        A.leave h
      done;
      Alcotest.(check (list int)) "empty at end" [] (A.get_set t))

let test_two_members (module A : ASET) () =
  in_sim (fun () ->
      let t = A.create ~n:4 () in
      let h0 = A.handle t ~pid:0 and h3 = A.handle t ~pid:3 in
      A.join h0;
      A.join h3;
      Alcotest.(check (list int)) "both, sorted" [ 0; 3 ] (A.get_set t);
      A.leave h0;
      Alcotest.(check (list int)) "one left" [ 3 ] (A.get_set t))

(* ---- concurrent validity under many schedules ---- *)

let record_workload (module A : ASET) ~n ~cycles ~getsets hist =
  let t = A.create ~n () in
  let member pid () =
    let h = A.handle t ~pid in
    for _ = 1 to cycles do
      History.record hist ~pid Activeset_check.Join (fun () ->
          A.join h;
          Activeset_check.Ack)
      |> ignore;
      History.record hist ~pid Activeset_check.Leave (fun () ->
          A.leave h;
          Activeset_check.Ack)
      |> ignore
    done
  in
  let observer pid () =
    for _ = 1 to getsets do
      History.record hist ~pid Activeset_check.Get_set (fun () ->
          Activeset_check.Set (A.get_set t))
      |> ignore
    done
  in
  Array.init n (fun pid -> if pid < n - 2 then member pid else observer pid)

let assert_valid hist =
  match Activeset_check.check (History.entries hist) with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "active set violation: %a" Activeset_check.pp_violation v

let test_random_schedules (module A : ASET) () =
  for seed = 0 to 49 do
    let hist = History.create ~now:Sim.mark () in
    let procs = record_workload (module A) ~n:5 ~cycles:4 ~getsets:6 hist in
    let res = Sim.run ~sched:(Scheduler.random ~seed ()) procs in
    assert (res.outcome = Sim.Completed);
    assert_valid hist
  done

let test_bursty_schedules (module A : ASET) () =
  for seed = 0 to 19 do
    let hist = History.create ~now:Sim.mark () in
    let procs = record_workload (module A) ~n:6 ~cycles:3 ~getsets:5 hist in
    ignore (Sim.run ~sched:(Scheduler.bursty ~seed ()) procs);
    assert_valid hist
  done

let test_crash_tolerance (module A : ASET) () =
  (* Crash a member mid-operation at various points; getSets by survivors
     must stay valid (the crashed process is "joining/leaving forever"). *)
  for seed = 0 to 19 do
    for at_clock = 0 to 10 do
      let hist = History.create ~now:Sim.mark () in
      let procs = record_workload (module A) ~n:4 ~cycles:3 ~getsets:5 hist in
      let sched =
        Scheduler.with_crash ~pid:0 ~at_clock (Scheduler.random ~seed ())
      in
      ignore (Sim.run ~sched procs);
      assert_valid hist
    done
  done

(* ---- exhaustive exploration on a tiny configuration ---- *)

let test_exhaustive_tiny (module A : ASET) () =
  let schedules = ref 0 in
  let make () =
    let hist = History.create ~now:Sim.mark () in
    let t = A.create ~n:2 () in
    let h0 = A.handle t ~pid:0 in
    (* The splitter tree's first join walks the tree (~14 steps), which
       blows up the exhaustive interleaving count; acquire its node in a
       solo setup execution so the explored program uses the O(1) re-join
       path.  First-join acquisition is covered by the randomized, PCT and
       crash suites above. *)
    if A.name = "splitter-tree" then
      ignore
        (Sim.run ~sched:(Scheduler.round_robin ())
           [|
             (fun () ->
               A.join h0;
               A.leave h0);
           |]);
    let procs =
      [|
        (fun () ->
          let h = h0 in
          History.record hist ~pid:0 Activeset_check.Join (fun () ->
              A.join h;
              Activeset_check.Ack)
          |> ignore;
          History.record hist ~pid:0 Activeset_check.Leave (fun () ->
              A.leave h;
              Activeset_check.Ack)
          |> ignore);
        (fun () ->
          History.record hist ~pid:1 Activeset_check.Get_set (fun () ->
              Activeset_check.Set (A.get_set t))
          |> ignore);
      |]
    in
    ( procs,
      fun () ->
        incr schedules;
        assert_valid hist )
  in
  ignore (Explore.run ~make ());
  (* p0 takes >= 2 steps and p1 >= 2 steps, so there are at least
     C(4,2) = 6 interleavings. *)
  check_bool
    (Printf.sprintf "schedules explored: %d" !schedules)
    true (!schedules >= 6)

(* ---- Figure 2 specifics: Theorem 2 ---- *)

module F = Sim_aset_fai

(* join and leave are O(1) worst case — constant step count no matter how
   much history or contention the object has seen. *)
let test_fai_join_leave_constant () =
  let steps_of_cycle ~prior_cycles =
    let join_steps = ref 0 and leave_steps = ref 0 in
    let procs =
      [|
        (fun () ->
          let t = F.create ~n:1 () in
          let h = F.handle t ~pid:0 in
          for _ = 1 to prior_cycles do
            F.join h;
            F.leave h
          done;
          let s0 = Sim.steps_of 0 in
          F.join h;
          join_steps := Sim.steps_of 0 - s0;
          let s1 = Sim.steps_of 0 in
          F.leave h;
          leave_steps := Sim.steps_of 0 - s1);
      |]
    in
    ignore (Sim.run ~sched:(Scheduler.round_robin ()) procs);
    (!join_steps, !leave_steps)
  in
  let j0, l0 = steps_of_cycle ~prior_cycles:0 in
  let j1, l1 = steps_of_cycle ~prior_cycles:500 in
  (* join = F&I + directory read + (chunk-install CAS) + slot write;
     leave = directory read + slot write.  Constant regardless of history
     (the 500-cycle join can even be cheaper: its chunk already exists). *)
  check_bool (Printf.sprintf "join O(1): %d" j0) true (j0 <= 4);
  check_bool (Printf.sprintf "leave O(1): %d" l0) true (l0 <= 2);
  check_bool (Printf.sprintf "join O(1) after churn: %d" j1) true (j1 <= 4);
  check_int "leave cost history-independent" l0 l1

(* The interval list makes getSet adaptive: after churn is published in C, a
   getSet skips all vacated slots. *)
let test_fai_getset_skips_vacated () =
  let second_getset_steps = ref 0 in
  let procs =
    [|
      (fun () ->
        let t = F.create ~n:1 () in
        let h = F.handle t ~pid:0 in
        for _ = 1 to 200 do
          F.join h;
          F.leave h
        done;
        (* publishes intervals covering all 200 slots *)
        ignore (F.get_set t);
        let s0 = Sim.steps_of 0 in
        ignore (F.get_set t);
        second_getset_steps := Sim.steps_of 0 - s0);
    |]
  in
  ignore (Sim.run ~sched:(Scheduler.round_robin ()) procs);
  check_bool
    (Printf.sprintf "second getSet constant: %d steps" !second_getset_steps)
    true
    (!second_getset_steps <= 4)

(* Amortized bound: total steps <= c1*J + c2*Ċ*L + c3*Σ C(G) + c4*G.
   Constants are the paper's with room for the chunk-directory overhead. *)
let test_fai_amortized_bound () =
  for seed = 0 to 9 do
    let rec_ = Metrics.create () in
    let t = F.create ~n:8 () in
    let member pid () =
      let h = F.handle t ~pid in
      for _ = 1 to 10 do
        Metrics.measure rec_ ~pid ~kind:"join" (fun () -> F.join h);
        Metrics.measure rec_ ~pid ~kind:"leave" (fun () -> F.leave h)
      done
    in
    let observer pid () =
      for _ = 1 to 8 do
        Metrics.measure rec_ ~pid ~kind:"getset" (fun () ->
            ignore (F.get_set t))
      done
    in
    let procs =
      Array.init 8 (fun pid -> if pid < 6 then member pid else observer pid)
    in
    ignore (Sim.run ~sched:(Scheduler.random ~seed ()) procs);
    let all = Metrics.samples rec_ in
    let joins = Metrics.by_kind rec_ "join"
    and leaves = Metrics.by_kind rec_ "leave"
    and getsets = Metrics.by_kind rec_ "getset" in
    let total = Metrics.total_steps all in
    let cdot = Metrics.max_point_contention all in
    let sum_cg =
      List.fold_left
        (fun acc g -> acc + Metrics.interval_contention all g)
        0 getsets
    in
    let bound =
      (4 * List.length joins)
      + (((6 * cdot) + 4) * List.length leaves)
      + (2 * sum_cg)
      + (8 * List.length getsets)
    in
    check_bool
      (Printf.sprintf "seed %d: total %d <= bound %d" seed total bound)
      true (total <= bound)
  done

(* Regression for the initialization race fixed relative to the paper's
   pseudocode (DESIGN.md §2): a getSet that runs entirely between a joiner's
   fetch&increment and its id write must not poison the skip list; the
   joiner must be visible to later getSets. *)
let test_fai_midjoin_race () =
  let t = F.create ~n:2 () in
  let sets = ref [] in
  let g1_done = ref false in
  let procs =
    [|
      (fun () ->
        let h = F.handle t ~pid:0 in
        F.join h (* F&I, then the id write *));
      (fun () ->
        sets := F.get_set t :: !sets;
        g1_done := true;
        sets := F.get_set t :: !sets);
    |]
  in
  (* phase 0: p0 takes exactly one step (its F&I) and parks;
     phase 1: p1 runs its first getSet to completion;
     phase 2: p0 completes its join;
     phase 3: p1 runs its second getSet. *)
  let pick (view : Scheduler.view) =
    let has p = Array.exists (fun q -> q = p) view.Scheduler.runnable in
    if (not !g1_done) && Sim.steps_of 0 < 1 && has 0 then Scheduler.Run 0
    else if (not !g1_done) && has 1 then Scheduler.Run 1
    else if has 0 then Scheduler.Run 0
    else Scheduler.Run 1
  in
  let res = Sim.run ~sched:{ Scheduler.name = "staged"; pick } procs in
  assert (res.outcome = Sim.Completed);
  match List.rev !sets with
  | [ first; second ] ->
    Alcotest.(check (list int)) "mid-join getSet may miss p0" [] first;
    Alcotest.(check (list int))
      "post-join getSet must see p0 (skip-list poisoned?)" [ 0 ] second
  | _ -> Alcotest.fail "expected two getSets"

(* Slots are never recycled: a second join must get a fresh slot even after
   the first is vacated (space is the paper's acknowledged open problem). *)
let test_fai_slots_not_recycled () =
  in_sim (fun () ->
      let t = F.create ~n:1 () in
      let h = F.handle t ~pid:0 in
      F.join h;
      F.leave h;
      F.join h;
      (* H has been bumped twice *)
      let module M = Mem.Sim in
      ());
  (* observable via get_set still being correct after many cycles *)
  in_sim (fun () ->
      let t = F.create ~n:1 () in
      let h = F.handle t ~pid:0 in
      for _ = 1 to 50 do
        F.join h;
        Alcotest.(check (list int)) "visible" [ 0 ] (F.get_set t);
        F.leave h;
        Alcotest.(check (list int)) "gone" [] (F.get_set t)
      done)

(* ---- splitter-tree specifics (the [3]-style adaptive active set) ---- *)

module Sp = Sim_aset_splitter

(* after the first join acquired a node, join/leave are O(1) *)
let test_splitter_rejoin_constant () =
  let first = ref 0 and rejoin = ref 0 and leave = ref 0 in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           let t = Sp.create ~n:1 () in
           let h = Sp.handle t ~pid:0 in
           let s0 = Sim.steps_of 0 in
           Sp.join h;
           first := Sim.steps_of 0 - s0;
           Sp.leave h;
           let s1 = Sim.steps_of 0 in
           Sp.join h;
           rejoin := Sim.steps_of 0 - s1;
           let s2 = Sim.steps_of 0 in
           Sp.leave h;
           leave := Sim.steps_of 0 - s2);
       |]);
  check_bool (Printf.sprintf "first join walks: %d steps" !first) true
    (!first >= 10);
  check_int "re-join is one mark write (2 steps w/ directory)" 2 !rejoin;
  check_int "leave likewise" 2 !leave

(* under concurrent first joins, every process acquires a distinct node and
   all become visible — the splitter's at-most-one-stop guarantee *)
let test_splitter_concurrent_acquisition () =
  for seed = 0 to 29 do
    let n = 6 in
    let t = Sp.create ~n () in
    let procs =
      Array.init n (fun pid () ->
          let h = Sp.handle t ~pid in
          Sp.join h)
    in
    ignore (Sim.run ~sched:(Scheduler.random ~seed ()) procs);
    let seen = ref [] in
    ignore
      (Sim.run ~sched:(Scheduler.round_robin ())
         [| (fun () -> seen := Sp.get_set t) |]);
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: all six acquired and visible" seed)
      [ 0; 1; 2; 3; 4; 5 ] !seen
  done

(* getSet cost adapts to how many processes ever joined, not to n *)
let test_splitter_getset_adaptive () =
  let cost ~joiners =
    let steps = ref 0 in
    let t = Sp.create ~n:64 () in
    let procs =
      Array.init joiners (fun pid () ->
          let h = Sp.handle t ~pid in
          Sp.join h)
    in
    ignore (Sim.run ~sched:(Scheduler.random ~seed:9 ()) procs);
    ignore
      (Sim.run ~sched:(Scheduler.round_robin ())
         [|
           (fun () ->
             let s0 = Sim.steps_of 0 in
             ignore (Sp.get_set t);
             steps := Sim.steps_of 0 - s0);
         |]);
    !steps
  in
  let two = cost ~joiners:2 and eight = cost ~joiners:8 in
  check_bool
    (Printf.sprintf "2 joiners: %d steps; 8 joiners: %d" two eight)
    true
    (two < eight && two <= 40)

let per_impl name f =
  List.map
    (fun (iname, m) -> Alcotest.test_case (iname ^ ": " ^ name) `Quick (f m))
    impls

let () =
  Alcotest.run "activeset"
    [
      ( "sequential",
        per_impl "join/leave/getSet" test_sequential
        @ per_impl "two members" test_two_members );
      ( "concurrent",
        per_impl "random schedules" test_random_schedules
        @ per_impl "bursty schedules" test_bursty_schedules
        @ per_impl "crash tolerance" test_crash_tolerance );
      ("exhaustive", per_impl "tiny config, all schedules" test_exhaustive_tiny);
      ( "fig2-theorem2",
        [
          Alcotest.test_case "join/leave O(1)" `Quick test_fai_join_leave_constant;
          Alcotest.test_case "getSet skips vacated" `Quick
            test_fai_getset_skips_vacated;
          Alcotest.test_case "amortized bound" `Quick test_fai_amortized_bound;
          Alcotest.test_case "mid-join race (pseudocode fix)" `Quick
            test_fai_midjoin_race;
          Alcotest.test_case "slots not recycled" `Quick
            test_fai_slots_not_recycled;
        ] );
      ( "splitter-tree",
        [
          Alcotest.test_case "rejoin O(1)" `Quick test_splitter_rejoin_constant;
          Alcotest.test_case "concurrent acquisition distinct" `Quick
            test_splitter_concurrent_acquisition;
          Alcotest.test_case "getSet adaptive" `Quick
            test_splitter_getset_adaptive;
        ] );
    ]
