(* Vector-clock laws, and the happens-before edges the race checker
   derives from synchronizing accesses — in particular that a successful
   CAS orders (acquire + release) while a failed CAS orders nothing. *)

open Psnap
module V = Psnap_sched.Vclock

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* A deterministic little family of clocks to quantify over. *)
let samples n =
  let z = V.make n in
  let a = V.incr z 0 in
  let b = V.incr z (n - 1) in
  let ab = V.join a b in
  let aa = V.incr a 0 in
  [ z; a; b; ab; aa; V.join aa b; V.incr ab (n / 2) ]

(* ---- lattice laws ---- *)

let test_join_laws () =
  let cs = samples 3 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_bool "join commutes" true
            (V.equal (V.join a b) (V.join b a));
          List.iter
            (fun c ->
              check_bool "join associates" true
                (V.equal
                   (V.join (V.join a b) c)
                   (V.join a (V.join b c))))
            cs)
        cs;
      check_bool "join idempotent" true (V.equal (V.join a a) a);
      check_bool "zero is the unit" true (V.equal (V.join a (V.make 3)) a))
    cs

let test_leq_partial_order () =
  let cs = samples 3 in
  List.iter
    (fun a ->
      check_bool "reflexive" true (V.leq a a);
      List.iter
        (fun b ->
          (* antisymmetry *)
          if V.leq a b && V.leq b a then
            check_bool "antisymmetric" true (V.equal a b);
          (* join is an upper bound... *)
          check_bool "a <= a|b" true (V.leq a (V.join a b));
          check_bool "b <= a|b" true (V.leq b (V.join a b));
          (* ...and the least one *)
          List.iter
            (fun c ->
              if V.leq a c && V.leq b c then
                check_bool "least upper bound" true (V.leq (V.join a b) c))
            cs;
          List.iter
            (fun c ->
              if V.leq a b && V.leq b c then
                check_bool "transitive" true (V.leq a c))
            cs)
        cs)
    cs

let test_incr () =
  let z = V.make 4 in
  let a = V.incr z 2 in
  check_int "incremented component" 1 (V.get a 2);
  check_int "other components untouched" 0 (V.get a 0);
  check_bool "strictly above" true (V.leq z a && not (V.leq a z));
  check_bool "incr is fresh, original unchanged" true
    (V.equal z (V.make 4));
  check_bool "concurrent increments are incomparable" true
    (V.compare (V.incr z 0) (V.incr z 1) = `Concurrent)

let test_compare () =
  let z = V.make 2 in
  let a = V.incr z 0 in
  let b = V.incr z 1 in
  check_bool "eq" true (V.compare a a = `Eq);
  check_bool "lt" true (V.compare z a = `Lt);
  check_bool "gt" true (V.compare a z = `Gt);
  check_bool "concurrent" true (V.compare a b = `Concurrent)

(* ---- happens-before edges through the memory backend ----

   One writer, one reader, one atomic flag, one plain buffer.  The reader
   polls the flag and then reads the buffer.  Whether the buffer access
   races depends entirely on whether the writer's flag CAS created a
   release edge the reader's polls acquired. *)

let publish_scenario ~expected () =
  Sim.reset_prerun_oids ();
  Race.enable ~n:2 ();
  let flag = Mem.Sim.make ~name:"flag" 0 in
  let buf = Mem.Sim.make_plain ~name:"buf" 0 in
  let writer () =
    Mem.Sim.write buf 1;
    ignore (Mem.Sim.cas flag ~expected ~desired:1)
  in
  let reader () =
    let rec poll budget =
      if budget > 0 && Mem.Sim.read flag = 0 then poll (budget - 1)
    in
    poll 10;
    ignore (Mem.Sim.read buf)
  in
  let _ =
    Sim.run ~sched:(Scheduler.round_robin ()) [| writer; reader |]
  in
  let races = Race.races () in
  Race.disable ();
  races

let test_cas_success_orders () =
  (* expected = 0 matches: the CAS succeeds, releasing the writer's clock;
     the reader's successful poll acquires it, ordering the buffer pair. *)
  check_int "successful CAS publish: no race" 0
    (List.length (publish_scenario ~expected:0 ()))

let test_cas_failure_does_not_order () =
  (* expected = 99 never matches: the CAS fails and must create no edge,
     so the buffer write/read pair is unordered — a race. *)
  let races = publish_scenario ~expected:99 () in
  check_bool "failed CAS publish: race reported" true (races <> []);
  let r = List.hd races in
  Alcotest.(check string) "on the plain buffer" "buf" r.Race.name

let test_write_read_edge () =
  (* Same scenario with a plain write to the flag instead of a CAS: an
     atomic write releases, an atomic read acquires. *)
  Sim.reset_prerun_oids ();
  Race.enable ~n:2 ();
  let flag = Mem.Sim.make ~name:"flag" 0 in
  let buf = Mem.Sim.make_plain ~name:"buf" 0 in
  let writer () =
    Mem.Sim.write buf 1;
    Mem.Sim.write flag 1
  in
  let reader () =
    let rec poll budget =
      if budget > 0 && Mem.Sim.read flag = 0 then poll (budget - 1)
    in
    poll 10;
    ignore (Mem.Sim.read buf)
  in
  let _ = Sim.run ~sched:(Scheduler.round_robin ()) [| writer; reader |] in
  let races = Race.races () in
  Race.disable ();
  check_int "atomic write/read pair orders the plain pair" 0
    (List.length races)

let test_faa_orders () =
  (* Fetch-and-add is an unconditional read-modify-write: both acquire and
     release.  Two pids alternating F&A on a counter, each writing a plain
     cell before and reading it after: no races. *)
  Sim.reset_prerun_oids ();
  Race.enable ~n:2 ();
  let c = Mem.Sim.make ~name:"c" 0 in
  let scratch = Mem.Sim.make_plain ~name:"scratch" 0 in
  let p pid () =
    (* Only pid 0 touches the plain cell before its F&A; pid 1 reads it
       after — ordered through the F&A chain on [c]. *)
    if pid = 0 then Mem.Sim.write scratch 7;
    ignore (Mem.Sim.fetch_and_add c 1);
    if pid = 1 && Mem.Sim.read c >= 2 then ignore (Mem.Sim.read scratch)
  in
  let _ = Sim.run ~sched:(Scheduler.round_robin ()) [| p 0; p 1 |] in
  let races = Race.races () in
  Race.disable ();
  check_int "F&A chain orders across pids" 0 (List.length races)

let () =
  Alcotest.run "vclock"
    [
      ( "laws",
        [
          Alcotest.test_case "join lattice" `Quick test_join_laws;
          Alcotest.test_case "leq partial order" `Quick
            test_leq_partial_order;
          Alcotest.test_case "incr" `Quick test_incr;
          Alcotest.test_case "compare" `Quick test_compare;
        ] );
      ( "edges",
        [
          Alcotest.test_case "CAS success orders" `Quick
            test_cas_success_orders;
          Alcotest.test_case "CAS failure does not" `Quick
            test_cas_failure_does_not_order;
          Alcotest.test_case "write releases, read acquires" `Quick
            test_write_read_edge;
          Alcotest.test_case "F&A orders" `Quick test_faa_orders;
        ] );
    ]
