(* Read-only transactions over declared read sets — the connection to
   transactional memory drawn in the paper's concluding remarks (Section 6):
   "a partial scan can be viewed as a read-only transaction that declares
   the objects it wishes to access in advance."

   Run with: dune exec examples/readonly_transactions.exe

   A key-value store keeps versioned cells in a partial snapshot object:
   each cell holds (generation, value), and a writer commits a transfer on
   an account pair by writing generation g to the first account and then to
   the second, keeping the pair sum at 100 within each generation.

   A read-only audit transaction declares its read set (one pair), performs
   one atomic partial scan, and validates by generation:
   - equal generations  -> a committed state: the pair sum MUST be 100;
   - generations g, g-1 -> mid-commit: the snapshot caught the writer
     between its two updates (legal, retry);
   - anything else      -> the reads were not atomic.

   With Figure 3's scans the audit can never see skew >= 2 and never sees a
   committed state with a broken sum; a naive read-one-register-at-a-time
   audit sees both.  The audit also never aborts more than once per
   concurrent writer commit and costs O(r^2) regardless of store size. *)

open Psnap
module S = Sim_fig3
module M = Mem.Sim

let accounts = 64

let pairs = 8

let encode ~gen v = (gen * 1024) + v

let decode x = (x / 1024, x mod 1024)

let () =
  let init = Array.init accounts (fun _ -> encode ~gen:0 50) in
  let t = S.create ~n:3 init in
  (* naive mirror board for the comparison audit *)
  let naive = Array.map (fun v -> M.make v) init in
  (* writer [pid] owns pairs with k mod 2 = pid: no write-write races *)
  let writer pid () =
    let h = S.handle t ~pid in
    for round = 1 to 150 do
      let k = (2 * ((round + pid) mod (pairs / 2))) + pid in
      let a = 2 * k and b = (2 * k) + 1 in
      let cur = S.scan h [| a; b |] in
      let gen_a, va = decode cur.(0) in
      let _, vb = decode cur.(1) in
      let delta = min va (1 + (round mod 7)) in
      let gen = gen_a + 1 in
      S.update h a (encode ~gen (va - delta));
      M.write naive.(a) (encode ~gen (va - delta));
      S.update h b (encode ~gen (vb + delta));
      M.write naive.(b) (encode ~gen (vb + delta))
    done
  in
  let audits = ref 0
  and mid_commit = ref 0
  and broken_snapshot = ref 0
  and naive_broken = ref 0 in
  let auditor () =
    let h = S.handle t ~pid:2 in
    for round = 1 to 80 do
      let k = round mod pairs in
      let a = 2 * k and b = (2 * k) + 1 in
      incr audits;
      (* the read-only transaction: one atomic partial scan *)
      let v = S.scan h [| a; b |] in
      let ga, va = decode v.(0) and gb, vb = decode v.(1) in
      if ga = gb then begin
        if va + vb <> 100 then incr broken_snapshot
      end
      else if ga = gb + 1 then incr mid_commit
      else incr broken_snapshot;
      (* the naive audit: two separate register reads *)
      let ga, va = decode (M.read naive.(a)) in
      let gb, vb = decode (M.read naive.(b)) in
      if (ga = gb && va + vb <> 100) || ga > gb + 1 || gb > ga then
        incr naive_broken
    done
  in
  let res =
    Sim.run
      ~sched:(Scheduler.starve ~victims:[ 2 ] ~seed:23 ~boost:0.04 ())
      [| writer 0; writer 1; auditor |]
  in
  Printf.printf "store of %d accounts, %d read-only audit transactions\n"
    accounts !audits;
  Printf.printf "snapshot audits:  %d clean, %d mid-commit retries, %d atomicity violations\n"
    (!audits - !mid_commit - !broken_snapshot)
    !mid_commit !broken_snapshot;
  Printf.printf "naive audits:     %d atomicity violations%s\n" !naive_broken
    (if !naive_broken > 0 then "  <- torn reads" else "");
  Printf.printf "total shared-memory steps: %d\n" res.Sim.clock;
  assert (!broken_snapshot = 0);
  print_endline
    "every declared-read-set transaction committed atomically (no validation loop)"
