(* Read-only transactions over declared read sets — the connection to
   transactional memory drawn in the paper's concluding remarks (Section 6):
   "a partial scan can be viewed as a read-only transaction that declares
   the objects it wishes to access in advance."

   Run with: dune exec examples/readonly_transactions.exe

   Earlier revisions of this example hand-rolled versioned cells and a
   generation-validation loop on raw scans; that protocol is now a
   subsystem (lib/txn), so the example uses the real thing: a typed
   key-value store over the MVCC snapshot-isolation layer
   ([Kv.Make_txn]).  Two tellers transfer money between account pairs in
   read-modify-write transactions (first committer wins, losers retry);
   an auditor runs read-only transactions that declare their read set and
   cost one partial scan — no validation, no abort, and every audit sees
   a committed state: pair sums are exactly 100, always, even mid-commit.

   For contrast the same workload runs in the deliberately unsound
   last-writer-wins mode: commits skip validation, and a concurrent
   transfer silently overwrites the other's — the losing transfer
   vanishes without any visible wreckage (each commit still moves a
   consistent pair), which is exactly why lost updates are insidious.
   Only the snapshot-isolation oracle ([Si_check]) names them. *)

open Psnap
module Kv = Psnap_apps.Kv.Make_txn (Sim_txn_fig3)

let pairs = 8

let accounts = 2 * pairs

let key i = Printf.sprintf "acct-%02d" i

let run ~mode ~seed =
  Sim.reset_prerun_oids ();
  let t = Kv.create ~mode ~n:3 (List.init accounts (fun i -> (key i, 50))) in
  let txns = ref [] in
  let retries = ref 0 in
  (* a transfer: read both balances at the begin snapshot, move delta,
     commit; a first-committer-wins conflict aborts the loser, who retries
     on a fresh snapshot *)
  let teller pid () =
    let h = Kv.handle t ~pid in
    for round = 1 to 50 do
      (* both tellers sweep the same pair sequence: plenty of same-pair
         contention for first-committer-wins to arbitrate *)
      let k = round mod pairs in
      let a = key (2 * k) and b = key ((2 * k) + 1) in
      let delta = 1 + ((round + (3 * pid)) mod 7) in
      let rec attempt () =
        let x = Kv.begin_ h in
        txns := x :: !txns;
        let va = Kv.get x a and vb = Kv.get x b in
        let d = min va delta in
        Kv.set x a (va - d);
        Kv.set x b (vb + d);
        match Kv.commit x with
        | Ok _ -> ()
        | Error _ ->
          incr retries;
          attempt ()
      in
      attempt ()
    done
  in
  let audits = ref 0 and broken = ref 0 and total = ref 0 in
  let auditor () =
    let h = Kv.handle t ~pid:2 in
    for round = 1 to 60 do
      let k = round mod pairs in
      (* the read-only transaction: declare the pair, one partial scan *)
      let x = Kv.begin_ h in
      txns := x :: !txns;
      (match Kv.get_many x [ key (2 * k); key ((2 * k) + 1) ] with
      | [ (_, va); (_, vb) ] ->
        incr audits;
        if va + vb <> 100 then incr broken
      | _ -> assert false);
      ignore (Kv.commit x)
    done;
    (* the closing audit: one full read-only snapshot of the store —
       transfers conserve money, so any consistent snapshot totals the
       same, committed transfers still in flight or not *)
    let x = Kv.begin_ h in
    txns := x :: !txns;
    let vs = Kv.get_all x in
    ignore (Kv.commit x);
    total := List.fold_left (fun acc (_, v) -> acc + v) 0 vs
  in
  let res =
    Sim.run
      ~sched:(Scheduler.starve ~victims:[ 2 ] ~seed ~boost:0.04 ())
      [| teller 0; teller 1; auditor |]
  in
  let total = !total in
  let viols =
    Si_check.check
      ~init:(Array.make accounts 50)
      (List.filter_map Kv.observation !txns)
  in
  (res.Sim.clock, !audits, !broken, !retries, total, viols)

let () =
  let clock, audits, broken, retries, total, viols =
    run ~mode:Txn.Fcw ~seed:23
  in
  Printf.printf "store of %d accounts, first-committer-wins:\n" accounts;
  Printf.printf
    "  %d pair audits, %d broken sums; closing snapshot total %d (expected \
     %d)\n"
    audits broken total (50 * accounts);
  Printf.printf
    "  %d transfer conflicts retried; SI oracle: %d violations; %d steps\n"
    retries (List.length viols) clock;
  assert (broken = 0);
  assert (total = 50 * accounts);
  assert (viols = []);
  (* the same tellers with validation switched off: overwritten transfers
     vanish without visible wreckage — only the oracle names them *)
  let _, _, lww_broken, lww_retries, lww_total, lww_viols =
    run ~mode:Txn.Lww ~seed:23
  in
  let lost =
    List.filter
      (function Si_check.Lost_update _ -> true | _ -> false)
      lww_viols
  in
  Printf.printf "last-writer-wins on the same workload:\n";
  Printf.printf
    "  closing snapshot total %d, %d broken pair audits, %d conflicts \
     noticed: the books look fine\n"
    lww_total lww_broken lww_retries;
  Printf.printf "  yet the SI oracle flags %d silently lost updates\n"
    (List.length lost);
  assert (lost <> []);
  print_endline
    "read-only transactions never validated, never aborted; every audit saw \
     a committed state"
