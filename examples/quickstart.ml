(* Quickstart: a partial snapshot object shared by four domains.

   Run with: dune exec examples/quickstart.exe

   The object stores m = 1024 integer components.  Three domains update
   disjoint regions concurrently; the main domain repeatedly performs
   atomic partial scans of a handful of components scattered across the
   vector.  Each scan costs O(r^2) shared-memory operations regardless of
   m — the paper's "local" guarantee — and is linearizable: it reflects a
   single instant of the whole vector. *)

module S = Psnap.Mc_fig3

let () =
  let m = 1024 in
  let n_updaters = 3 in
  let t = S.create ~n:(n_updaters + 1) (Array.make m 0) in

  let stop = Atomic.make false in
  let updaters =
    List.init n_updaters (fun d ->
        Domain.spawn (fun () ->
            let h = S.handle t ~pid:d in
            let k = ref 0 in
            while not (Atomic.get stop) do
              incr k;
              (* each updater owns a third of the vector *)
              let i = (d * (m / n_updaters)) + (!k mod (m / n_updaters)) in
              S.update h i !k
            done))
  in

  let h = S.handle t ~pid:n_updaters in
  let idxs = [| 7; 341; 342; 700; 1023 |] in
  for round = 1 to 5 do
    let values = S.scan h idxs in
    Printf.printf "scan %d:" round;
    Array.iteri (fun j i -> Printf.printf "  [%d]=%d" i values.(j)) idxs;
    print_newline ()
  done;

  Atomic.set stop true;
  List.iter Domain.join updaters;

  (* a full snapshot is just the partial scan of everything *)
  let all = S.scan h (Array.init m (fun i -> i)) in
  let sum = Array.fold_left ( + ) 0 all in
  Printf.printf "final full snapshot: m=%d, sum=%d\n" m sum
