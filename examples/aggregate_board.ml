(* Live aggregates with the f-array (the related-work structure of
   Section 5, Jayanti [20]): when every query wants one fixed function of
   ALL components — here, the total and the maximum of a metrics board —
   the f-array answers in a single shared-memory step, at the price of
   Theta(log m) larger-object operations per update.

   Run with: dune exec examples/aggregate_board.exe

   Contrast with examples/portfolio.ml: unpredictable queries over subsets
   are the partial snapshot's territory; one fixed global aggregate is the
   f-array's.  This example exercises both faces: a sum f-array and a max
   f-array fed by the same workers, read concurrently, under a seeded
   bursty schedule with exact step accounting. *)

open Psnap
module F = Psnap.Farray.Make (Psnap.Mem.Sim)

let workers = 4

let metrics_per_worker = 16

let () =
  let m = workers * metrics_per_worker in
  let totals = F.create ~pad:0 ~of_leaf:Fun.id ~combine:( + ) (Array.make m 0) in
  let peaks =
    F.create ~pad:min_int ~of_leaf:Fun.id ~combine:max (Array.make m 0)
  in
  let reads = ref [] in
  let worker pid () =
    for round = 1 to 25 do
      let metric = (pid * metrics_per_worker) + (round mod metrics_per_worker) in
      let v = (round * (pid + 3)) mod 97 in
      F.update totals metric v;
      F.update peaks metric v
    done
  in
  let dashboard () =
    for _ = 1 to 30 do
      (* each refresh is exactly two shared-memory steps *)
      let total = F.read_root totals in
      let peak = F.read_root peaks in
      reads := (total, peak) :: !reads
    done
  in
  let procs =
    Array.init (workers + 1) (fun pid ->
        if pid < workers then worker pid else dashboard)
  in
  let res = Sim.run ~sched:(Scheduler.bursty ~seed:17 ()) procs in
  let final_total = ref 0 and final_peak = ref 0 in
  ignore
    (Sim.run ~sched:(Scheduler.round_robin ())
       [|
         (fun () ->
           final_total := F.read_root totals;
           final_peak := F.read_root peaks);
       |]);
  Printf.printf "board: %d metrics, %d workers, %d steps total\n" m workers
    res.Sim.clock;
  Printf.printf "dashboard refreshes: %d (2 steps each)\n" (List.length !reads);
  Printf.printf "final total = %d, final peak = %d\n" !final_total !final_peak;
  List.iter
    (fun (t, p) ->
      assert (t >= 0 && t <= !final_total + (97 * m));
      assert (p <= 96))
    !reads;
  print_endline "all dashboard reads were plausible aggregates"
