(* Randomized binary consensus from partial snapshots — the introduction
   of the paper cites snapshots as a building block for randomized
   consensus [6, 7]; this example assembles one from the commit-adopt
   objects of Psnap_apps (two partial scans per round) plus local coins,
   Ben-Or style.

   Run with: dune exec examples/consensus.exe

   Safety is deterministic and rests entirely on commit-adopt's grading
   (itself resting on the snapshot's linearizability): a Commit at round r
   forces every other process to leave round r with the same value, so all
   later rounds are unanimous and commit.  Only termination is
   probabilistic: a process whose round was graded Free — provably nobody
   committed in it — replaces its value by a coin flip. *)

open Psnap
module CA = Psnap_apps.Commit_adopt.Make (Sim_fig3)

let n = 5

let max_rounds = 48

let () =
  let inputs = [| 1; 0; 1; 0; 0 |] in
  let instances = Array.init max_rounds (fun _ -> CA.create ~n ()) in
  let decisions = Array.make n None in
  let decide_round = Array.make n max_rounds in
  let proc pid () =
    let coin = Random.State.make [| 97; pid |] in
    let v = ref inputs.(pid) in
    let r = ref 0 in
    let decided = ref false in
    while (not !decided) && !r < max_rounds do
      let h = CA.handle instances.(!r) ~pid in
      (match CA.propose h ~pid !v with
      | CA.Commit w ->
        decisions.(pid) <- Some w;
        decide_round.(pid) <- !r;
        decided := true
      | CA.Adopt w -> v := w
      | CA.Free _ -> v := Random.State.int coin 2);
      incr r
    done
  in
  let res =
    Sim.run
      ~sched:(Scheduler.bursty ~seed:41 ~mean_burst:12 ())
      (Array.init n (fun pid -> proc pid))
  in
  Printf.printf "inputs:    %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int inputs)));
  Printf.printf "decisions: %s\n"
    (String.concat " "
       (Array.to_list
          (Array.map
             (function Some v -> string_of_int v | None -> "?")
             decisions)));
  Printf.printf "rounds:    %s   (%d shared-memory steps)\n"
    (String.concat " "
       (Array.to_list (Array.map string_of_int decide_round)))
    res.Sim.clock;
  let decided = Array.to_list decisions |> List.filter_map Fun.id in
  assert (List.length decided = n);
  (match decided with
  | w :: rest ->
    assert (List.for_all (fun x -> x = w) rest);
    assert (Array.exists (fun i -> i = w) inputs)
  | [] -> assert false);
  print_endline "agreement and validity hold; all processes decided"
