(* The stock-portfolio scenario from the paper's introduction.

   Run with: dune exec examples/portfolio.exe

   A market board stores one price per ticker (m = 256).  A rebalancer
   keeps the four tickers of one portfolio at equal weight: it repeatedly
   sets all four to a new common price, one update at a time, so at any
   *instant* the four prices differ by at most one generation.  Auditors
   value the portfolio concurrently:

   - the naive auditor reads the four prices one register at a time (the
     inconsistent read the introduction warns about);
   - the snapshot auditor uses an atomic partial scan of the same four
     components (Figure 3) — it never needs to read the other 252 tickers.

   Under an adversarial schedule the naive auditor observes portfolios that
   never existed (generation skew > 1, i.e. a valuation no instant of the
   market ever had), while every partial scan is consistent.  The run is
   simulated so the schedule is reproducible and steps are counted. *)

open Psnap
module S = Sim_fig3
module M = Mem.Sim

let m = 256

let portfolio = [| 10; 53; 128; 200 |]

let generations = 300

let skew values =
  Array.fold_left max min_int values - Array.fold_left min max_int values

let () =
  let t = S.create ~n:3 (Array.make m 0) in
  (* the naive auditor reads the same underlying object through raw register
     reads — simulate that with a parallel plain-register board kept in sync
     by the same rebalancer *)
  let naive_board = Array.init m (fun _ -> M.make 0) in
  let naive_worst = ref 0 and snap_worst = ref 0 in
  let naive_scans = ref 0 and snap_scans = ref 0 in
  let procs =
    [|
      (* rebalancer *)
      (fun () ->
        let h = S.handle t ~pid:0 in
        for g = 1 to generations do
          Array.iter
            (fun i ->
              S.update h i g;
              M.write naive_board.(i) g)
            portfolio
        done);
      (* naive auditor: one register at a time *)
      (fun () ->
        for _ = 1 to 40 do
          let values = Array.map (fun i -> M.read naive_board.(i)) portfolio in
          incr naive_scans;
          naive_worst := max !naive_worst (skew values)
        done);
      (* snapshot auditor: atomic partial scan of the four tickers *)
      (fun () ->
        let h = S.handle t ~pid:2 in
        for _ = 1 to 40 do
          let values = S.scan h portfolio in
          incr snap_scans;
          snap_worst := max !snap_worst (skew values)
        done);
    |]
  in
  (* both auditors run slowly relative to the market — the realistic regime
     (and the adversarial one: a reader being outpaced by writers) *)
  let res =
    Sim.run ~sched:(Scheduler.starve ~victims:[ 1; 2 ] ~seed:11 ~boost:0.03 ()) procs
  in
  Printf.printf "market: m=%d tickers; portfolio of %d; %d rebalance generations\n"
    m (Array.length portfolio) generations;
  Printf.printf "total shared-memory steps: %d\n\n" res.Sim.clock;
  Printf.printf "naive auditor    : %d valuations, worst generation skew = %d%s\n"
    !naive_scans !naive_worst
    (if !naive_worst > 1 then "  <- saw a portfolio that never existed" else "");
  Printf.printf "snapshot auditor : %d valuations, worst generation skew = %d\n"
    !snap_scans !snap_worst;
  assert (!snap_worst <= 1);
  if !naive_worst <= 1 then
    print_endline "\n(naive auditor got lucky under this seed; try another)"
