(* Consistent checkpoints of a crashing computation (the data-recovery use
   case from the paper's introduction).

   Run with: dune exec examples/checkpoint.exe

   Eight workers form a pipeline over a shared progress vector: component i
   holds the last block worker i has processed, and worker i only processes
   block b after observing that worker i-1 has finished it.  Hence, at
   every instant, progress(i) <= progress(i-1).

   A monitor checkpoints the pipeline stage by stage with two-component
   partial scans.  Because each scan is atomic, every checkpoint satisfies
   the invariant — even while workers run, and even after the simulator
   crashes a worker mid-operation (its downstream gives up after a bounded
   number of polls; everyone is wait-free, so nobody blocks).  A naive
   two-read checkpoint has no such guarantee. *)

open Psnap
module S = Sim_fig3

let workers = 8

let blocks = 40

let () =
  let t = S.create ~n:(workers + 1) (Array.make workers 0) in
  let checkpoints = ref [] in
  let worker pid () =
    let h = S.handle t ~pid in
    try
      for b = 1 to blocks do
        if pid > 0 then begin
          (* poll upstream; give up (like a pipeline timeout) if it seems
             dead so the run terminates even after crashes *)
          let attempts = ref 0 in
          while (S.scan h [| pid - 1 |]).(0) < b do
            incr attempts;
            if !attempts > 200 then raise Exit
          done
        end;
        S.update h pid b
      done
    with Exit -> ()
  in
  let monitor () =
    let h = S.handle t ~pid:workers in
    for _ = 1 to 25 do
      for i = 1 to workers - 1 do
        let v = S.scan h [| i - 1; i |] in
        checkpoints := (i, v.(0), v.(1)) :: !checkpoints
      done
    done
  in
  let procs =
    Array.init (workers + 1) (fun pid ->
        if pid < workers then worker pid else monitor)
  in
  let sched =
    Scheduler.with_crash ~pid:3 ~at_clock:2000
      (Scheduler.with_crash ~pid:6 ~at_clock:3000 (Scheduler.random ~seed:5 ()))
  in
  let res = Sim.run ~max_steps:10_000_000 ~sched procs in
  let violations =
    List.filter (fun (_, up, down) -> down > up) !checkpoints
  in
  Printf.printf "workers=%d blocks=%d steps=%d crashed=[%s]\n" workers blocks
    res.Sim.clock
    (String.concat ";" (List.map string_of_int res.Sim.crashed));
  Printf.printf "stage checkpoints taken: %d\n" (List.length !checkpoints);
  Printf.printf
    "invariant violations (downstream ahead of its upstream): %d\n"
    (List.length violations);
  assert (violations = []);
  print_endline "all checkpoints are consistent cuts, before and after the crashes"
