(* Wait-free approximate agreement built on atomic snapshots — one of the
   classic snapshot applications cited in the paper's introduction [11].

   Run with: dune exec examples/approximate_agreement.exe

   n processes start with arbitrary real inputs and must decide values that
   (a) all lie within epsilon of each other and (b) stay within the range
   of the inputs, despite arbitrary asynchrony.  The textbook algorithm
   runs in rounds: post your current estimate, atomically scan everyone's
   posted estimates for this round, move to their midpoint, halving the
   spread each round.

   The snapshot is the whole trick: with naive reads two processes can see
   different mixes of old and new estimates and the spread never contracts
   reliably.  Here each process only ever needs the estimates of the posted
   round, so the scans are partial: component (round, pid) — a vector of
   n*rounds components of which each scan touches n. *)

open Psnap
module S = Sim_fig3

let n = 5

let rounds = 12

let epsilon = 0.01

(* estimates are stored as fixed-point ints so the example reuses the int
   snapshot object; unwritten slots are min_int *)
let scale = 1_000_000.

let to_fix x = int_of_float (x *. scale)

let of_fix k = float_of_int k /. scale

let () =
  let inputs = [| 0.0; 10.0; 3.5; 7.25; 1.0 |] in
  let m = n * (rounds + 1) in
  let t = S.create ~n (Array.make m min_int) in
  let decisions = Array.make n nan in
  let proc pid () =
    let h = S.handle t ~pid in
    let est = ref inputs.(pid) in
    for round = 0 to rounds - 1 do
      (* post my estimate for this round, then scan this round's row *)
      S.update h ((round * n) + pid) (to_fix !est);
      let row = Array.init n (fun q -> (round * n) + q) in
      let posted = S.scan h row in
      let known =
        Array.to_list posted |> List.filter (fun v -> v <> min_int)
        |> List.map of_fix
      in
      let lo = List.fold_left min !est known
      and hi = List.fold_left max !est known in
      est := (lo +. hi) /. 2.
    done;
    decisions.(pid) <- !est
  in
  let res =
    Sim.run
      ~sched:(Scheduler.bursty ~seed:3 ~mean_burst:9 ())
      (Array.init n (fun pid -> proc pid))
  in
  let lo = Array.fold_left min infinity decisions
  and hi = Array.fold_left max neg_infinity decisions in
  Printf.printf "inputs    : %s\n"
    (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.2f") inputs)));
  Printf.printf "decisions : %s\n"
    (String.concat " "
       (Array.to_list (Array.map (Printf.sprintf "%.6f") decisions)));
  Printf.printf "spread %.8f after %d rounds (%d shared-memory steps)\n"
    (hi -. lo) rounds res.Sim.clock;
  assert (hi -. lo <= epsilon *. (10.0 -. 0.0));
  assert (lo >= 0.0 && hi <= 10.0);
  print_endline "agreement within epsilon; validity preserved"
