(* The benchmark harness: regenerates every experiment table of
   EXPERIMENTS.md.

   Part 1 (E1-E7) runs on the step-counting simulator — machine-independent
   step counts, the cost unit of the paper's theorems.
   Part 2 (E8) measures wall-clock operation latency of the Atomic-backed
   implementations with Bechamel, plus a simple multi-domain throughput
   table.  Run with `dune exec bench/main.exe`. *)

open Psnap
module Table = Psnap_harness.Table
module Experiments = Psnap_harness.Experiments

(* ---- E8a: bechamel latency of uncontended operations ---- *)

let bechamel_tests () =
  let open Bechamel in
  let m = 256 in
  let r = 8 in
  let idxs = Array.init r (fun k -> k * 31 mod m) in
  let mk_update name (module S : Snapshot.S) =
    let t = S.create ~n:1 (Array.init m (fun i -> i)) in
    let h = S.handle t ~pid:0 in
    let k = ref 0 in
    Test.make ~name:(name ^ "/update")
      (Staged.stage (fun () ->
           incr k;
           S.update h (!k mod m) !k))
  in
  let mk_scan name (module S : Snapshot.S) =
    let t = S.create ~n:1 (Array.init m (fun i -> i)) in
    let h = S.handle t ~pid:0 in
    Test.make ~name:(Printf.sprintf "%s/scan r=%d" name r)
      (Staged.stage (fun () -> ignore (S.scan h idxs)))
  in
  let mk_full name (module S : Snapshot.S) =
    let t = S.create ~n:1 (Array.init m (fun i -> i)) in
    let h = S.handle t ~pid:0 in
    let all = Array.init m (fun i -> i) in
    Test.make ~name:(Printf.sprintf "%s/scan r=m=%d" name m)
      (Staged.stage (fun () -> ignore (S.scan h all)))
  in
  let impls : (string * (module Snapshot.S)) list =
    [
      ("afek", (module Mc_afek));
      ("fig1", (module Mc_fig1));
      ("fig3", (module Mc_fig3));
      ("farray", (module Mc_farray));
    ]
  in
  (* the restricted single-writer/single-scanner object (related work) *)
  let module SS = Psnap.Snapshot.Single_scanner (Psnap.Mem.Atomic) in
  let ss_tests =
    let t =
      SS.create ~owner:(Array.make m 0) ~scanner:0 (Array.init m (fun i -> i))
    in
    let h = SS.handle t ~pid:0 in
    let k = ref 0 in
    [
      Test.make ~name:"sw-ss/update"
        (Staged.stage (fun () ->
             incr k;
             SS.update h (!k mod m) !k));
      Test.make
        ~name:(Printf.sprintf "sw-ss/scan r=%d" r)
        (Staged.stage (fun () -> ignore (SS.scan h idxs)));
    ]
  in
  Test.make_grouped ~name:"snapshot"
    (List.concat_map
       (fun (name, m') -> [ mk_update name m'; mk_scan name m'; mk_full name m' ])
       impls
    @ ss_tests)

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols (List.hd instances) raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> e
          | _ -> nan
        in
        let r2 =
          match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
        in
        [ name; Printf.sprintf "%.1f" ns; Printf.sprintf "%.4f" r2 ] :: acc)
      results []
    |> List.sort compare
  in
  Table.print
    (Table.make
       ~title:
         "E8a  Wall-clock latency, uncontended (Atomic backend, m=256, bechamel OLS)"
       ~header:[ "operation"; "ns/op"; "r^2" ]
       rows)

(* ---- E8b: multi-domain throughput (driven by the runtime loadgen) ---- *)

module Loadgen = Psnap.Runtime.Loadgen

let throughput_row (name, impl) =
  let rep =
    Loadgen.run impl
      {
        Loadgen.default with
        m = 256;
        r = 8;
        domains = 2;
        mix = Loadgen.Dedicated { updaters = 1; scanners = 1 };
        warmup_s = 0.05;
        duration_s = 0.5;
      }
  in
  let rate n =
    if rep.Loadgen.elapsed_s > 0.0 then
      Printf.sprintf "%.0f" (float_of_int n /. rep.Loadgen.elapsed_s)
    else "0"
  in
  [ name; rate rep.Loadgen.updates; rate rep.Loadgen.scans ]

let run_throughput () =
  let impls : (string * (module Snapshot.S)) list =
    [
      ("afek", (module Mc_afek));
      ("fig1", (module Mc_fig1));
      ("fig3", (module Mc_fig3));
      ("farray", (module Mc_farray));
      ("sharded-4xfig3", (module Mc_sharded_fig3));
    ]
  in
  Table.print
    (Table.make
       ~title:
         "E8b  Throughput, 1 updater + 1 scanner domain, 0.5 s (single-core host: domains time-slice)"
       ~header:[ "impl"; "updates/s"; "scans/s (r=8)" ]
       (List.map throughput_row impls))

let () =
  print_endline "Partial snapshot objects (SPAA'08) - experiment suite";
  print_endline "Step counts below are exact shared-memory accesses in the";
  print_endline "simulator; see EXPERIMENTS.md for the paper-vs-measured discussion.";
  List.iter Table.print (Experiments.all ());
  run_bechamel ();
  run_throughput ()
